"""Static inter-node task partitioning (the paper's §5.3 setting).

"The task assignment among different nodes is static": the degree-
ordered vertex list is dealt round-robin across the *q* nodes, so every
node receives an equal share of high- and low-importance roots.  Within
a node the intra-node policy (static or dynamic) applies.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import TaskError

__all__ = ["round_robin_partition", "region_partition", "split_chunks"]


def round_robin_partition(
    order: Sequence[int], num_nodes: int
) -> List[List[int]]:
    """Deal *order* round-robin to *num_nodes* lists.

    Node *k* receives ``order[k], order[k + q], order[k + 2q], ...``,
    preserving relative importance order within each node.
    """
    if num_nodes < 1:
        raise TaskError("num_nodes must be >= 1")
    parts: List[List[int]] = [[] for _ in range(num_nodes)]
    for i, v in enumerate(order):
        parts[i % num_nodes].append(int(v))
    return parts


def region_partition(
    graph, order: Sequence[int], num_nodes: int, seed: int = 0
) -> List[List[int]]:
    """Locality-aware alternative to the round-robin split (ablation).

    Grows *q* regions by multi-source BFS from the *q* highest-ranked
    vertices, then gives each node its region's vertices in global
    importance order.  The hypothesis this lets benchmarks test: a node
    that owns a coherent region keeps the hubs covering *its own* roots
    (good for road networks), at the price of losing the global top
    hubs for everyone else (bad for hub-centric graphs) — against the
    paper's structure-oblivious round robin.

    Args:
        graph: the graph (needed for adjacency; round robin is not).
        order: the global ordering, most important first.
        num_nodes: number of regions/nodes q.
        seed: tie-break seed when regions flood-fill simultaneously.

    Returns:
        One task list per node; lists are balanced to within the region
        structure (unreached vertices are dealt round-robin).
    """
    import numpy as np

    if num_nodes < 1:
        raise TaskError("num_nodes must be >= 1")
    n = graph.num_vertices
    if num_nodes == 1:
        return [[int(v) for v in order]]
    if n == 0:
        return [[] for _ in range(num_nodes)]
    rng = np.random.default_rng(seed)
    owner = [-1] * n
    frontiers: List[List[int]] = []
    seeds = [int(v) for v in order[:num_nodes]]
    for k, s in enumerate(seeds):
        owner[s] = k
        frontiers.append([s])
    adj = graph.adjacency_lists()
    active = True
    while active:
        active = False
        # Expand regions one BFS layer at a time, smallest region first
        # (keeps sizes balanced); random tie-break among equals.
        sizes = [sum(1 for o in owner if o == k) for k in range(num_nodes)]
        for k in sorted(
            range(num_nodes), key=lambda k: (sizes[k], rng.random())
        ):
            new_frontier = []
            for u in frontiers[k]:
                for v, _w in adj[u]:
                    if owner[v] == -1:
                        owner[v] = k
                        new_frontier.append(v)
            frontiers[k] = new_frontier
            if new_frontier:
                active = True
    parts: List[List[int]] = [[] for _ in range(num_nodes)]
    spill = 0
    for v in order:
        v = int(v)
        k = owner[v]
        if k == -1:  # disconnected leftovers: deal round-robin
            k = spill % num_nodes
            spill += 1
        parts[k].append(v)
    return parts


def split_chunks(
    tasks: Sequence[int],
    num_chunks: int,
    schedule: str = "uniform",
    min_chunk: int = 1,
) -> List[List[int]]:
    """Split one node's task list into *num_chunks* contiguous chunks.

    Chunk boundaries are the synchronisation points: after chunk *j*
    every node exchanges the labels indexed during it.

    Args:
        tasks: the node's task list, importance order.
        num_chunks: the sync count ``c``.
        schedule: boundary placement.

            * ``"uniform"`` — equal-size chunks, the paper's
              "every ⌊n/c⌋ indexed vertices".  Sizes differ by at most
              one; with more chunks than tasks the tail chunks are empty
              (the sync still happens, charging its communication cost —
              matching the paper's observation that high sync counts
              only add overhead).
            * ``"early"`` — geometric chunks, fraction ``2^j / (2^c - 1)``
              for chunk *j*: the first sync lands after only
              ``share / (2^c - 1)`` roots.  Because the first ~100 roots
              produce ~90 % of all labels (the paper's Figure 6), an
              early exchange restores almost all cross-node pruning for
              the price of one small message — the scale-bridging
              schedule this reproduction uses for Table 5 (DESIGN.md §2).

        min_chunk: lower bound on non-final chunk sizes (``"early"``
            only).  Set it to the node's thread count so the first
            rounds don't leave workers idle; tiny leading chunks are
            merged forward into their successors.

    Raises:
        TaskError: on invalid chunk counts or schedules.
    """
    if num_chunks < 1:
        raise TaskError("num_chunks must be >= 1")
    if min_chunk < 1:
        raise TaskError("min_chunk must be >= 1")
    n = len(tasks)
    out: List[List[int]] = []
    if schedule == "uniform":
        start = 0
        for j in range(num_chunks):
            size = n // num_chunks + (1 if j < n % num_chunks else 0)
            out.append([int(v) for v in tasks[start : start + size]])
            start += size
    elif schedule == "early":
        total_weight = float(2**num_chunks - 1)
        start = 0
        for j in range(num_chunks):
            if j == num_chunks - 1:
                end = n
            else:
                cum = (2 ** (j + 1) - 1) / total_weight
                end = min(n, max(start + min_chunk, int(round(n * cum))))
            out.append([int(v) for v in tasks[start:end]])
            start = end
    else:
        raise TaskError(
            f"unknown sync schedule {schedule!r} (uniform|early)"
        )
    return out
