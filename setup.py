"""Setup shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517`` on offline
machines whose setuptools cannot build PEP-517 editable wheels.
"""

from setuptools import setup

setup()
