"""Figure 5: vertex degree distributions of all 11 datasets."""

import numpy as np

from repro.bench.figures import format_fig5
from repro.bench.harness import experiment_fig5
from repro.generators.paper import DATASETS


def test_fig5_degree_distributions(benchmark, config):
    hists = benchmark.pedantic(
        lambda: experiment_fig5(config), rounds=1, iterations=1
    )
    print()
    print(format_fig5(hists))

    for name, hist in hists.items():
        family = DATASETS[name].spec.family
        degrees = np.array(sorted(hist))
        counts = np.array([hist[d] for d in degrees], dtype=float)
        mean = (degrees * counts).sum() / counts.sum()
        dmax = degrees.max()
        if family == "road":
            # Road networks: tightly bounded degrees, no tail (Fig 5).
            assert dmax <= 8
        elif family == "community":
            # Collaboration stand-ins: block-structured, moderate spread.
            assert dmax < 4 * mean
        else:
            # Power-law families: a heavy tail well above the mean.
            assert dmax > 2 * mean
