"""Figure 7: the synchronisation-frequency sweep on a 6-node cluster.

(a)/(b): indexing time grows and label size shrinks as the sync count c
increases; (c)/(d): the breakdown shows communication taking over.
Paper-faithful uniform schedule throughout.
"""

from collections import defaultdict

from repro.bench.figures import format_fig7
from repro.bench.harness import experiment_fig7


def test_fig7_sync_sweep(benchmark, quick_config):
    rows = benchmark.pedantic(
        lambda: experiment_fig7(quick_config), rounds=1, iterations=1
    )
    print()
    print(format_fig7(rows))

    per_dataset = defaultdict(list)
    for r in rows:
        per_dataset[r["dataset"]].append(r)

    for name, series in per_dataset.items():
        series.sort(key=lambda r: r["syncs"])
        first, last = series[0], series[-1]
        # (b) label size decreases monotonically-ish with more syncs.
        assert last["label_size"] < first["label_size"]
        # (c)/(d) communication time grows with more syncs...
        assert last["communication"] > first["communication"]
        # ...until it dominates the run entirely at c=max.
        assert last["communication"] / last["seconds"] > 0.3
        # (a) and the headline conclusion: few syncs are fastest.
        fastest = min(series, key=lambda r: r["seconds"])
        assert fastest["syncs"] <= series[len(series) // 2]["syncs"]
