"""Query-stage cost vs. label size (the paper's §5.3.2 observation).

Table 5's label sizes grow 2-3x across a 6-node cluster; the paper
notes this "increases the query cost by several microseconds" but is
worth it for the indexing speedup.  This bench builds a serial index
and a cluster index for the same graph and compares (a) the average
label entries scanned per query and (b) the measured per-query time —
asserting the cost grows no faster than the label size does.
"""

import random

import pytest

from repro.cluster.network import NetworkModel
from repro.cluster.parapll import simulate_cluster
from repro.core.index import PLLIndex
from repro.generators.paper import load_dataset

from conftest import bench_scale


@pytest.fixture(scope="module")
def graph():
    return load_dataset("CondMat", scale=bench_scale(), seed=42)


@pytest.fixture(scope="module")
def serial_index(graph):
    return PLLIndex.build(graph)


@pytest.fixture(scope="module")
def cluster_index(graph):
    index, _run = simulate_cluster(
        graph, 6, threads_per_node=2, syncs=1,
        network=NetworkModel(latency_units=1, per_entry_units=0.0),
    )
    return index


def _pairs(graph, k=256):
    rng = random.Random(7)
    n = graph.num_vertices
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(k)]


def test_query_serial_index(benchmark, graph, serial_index):
    pairs = _pairs(graph)
    benchmark(lambda: [serial_index.distance(s, t) for s, t in pairs])


def test_query_cluster_index(benchmark, graph, cluster_index):
    pairs = _pairs(graph)
    benchmark(lambda: [cluster_index.distance(s, t) for s, t in pairs])


def test_query_cost_tracks_label_size(benchmark, graph, serial_index,
                                      cluster_index):
    """Scanned entries grow with LN, and sub-linearly in practice."""

    def run():
        pairs = _pairs(graph)
        scans = {"serial": 0, "cluster": 0}
        for s, t in pairs:
            scans["serial"] += serial_index.query(s, t).entries_scanned
            scans["cluster"] += cluster_index.query(s, t).entries_scanned
        return scans

    scans = benchmark.pedantic(run, rounds=1, iterations=1)
    ln_ratio = cluster_index.avg_label_size() / serial_index.avg_label_size()
    scan_ratio = scans["cluster"] / max(scans["serial"], 1)
    print(
        f"\n  LN ratio {ln_ratio:.2f}x -> scan ratio {scan_ratio:.2f}x "
        f"({scans['serial']} vs {scans['cluster']} entries for 256 queries)"
    )
    assert scan_ratio >= 1.0
    # Merge-join cost is at most linear in the label growth.
    assert scan_ratio <= 1.5 * ln_ratio
