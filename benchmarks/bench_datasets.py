"""Table 2: the dataset inventory (paper scale vs. stand-in scale)."""

import pytest

from repro.bench.harness import experiment_datasets
from repro.bench.tables import format_table2


def test_table2_datasets(benchmark, config):
    rows = benchmark.pedantic(
        lambda: experiment_datasets(config), rounds=1, iterations=1
    )
    print()
    print(format_table2(rows))
    assert len(rows) == len(config.datasets)
    for row in rows:
        # Stand-ins keep the family density: m/n within ~4x of the paper.
        paper_density = row["paper_m"] / row["paper_n"]
        ours = row["m"] / row["n"]
        assert ours == pytest.approx(paper_density, rel=3.0)
