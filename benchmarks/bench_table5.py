"""Table 5: cluster ParaPLL across 1-6 nodes, static and dynamic.

Uses the scale-bridged "early" synchronisation schedule (DESIGN.md §2);
``python -m repro.bench --experiment table5 --schedule uniform --syncs 1``
regenerates the paper-faithful configuration, whose compute-side label
explosion at reproduction scale is analysed in EXPERIMENTS.md.
"""

from repro.bench.harness import experiment_table5
from repro.bench.tables import format_table5


def test_table5_cluster(benchmark, quick_config):
    rows = benchmark.pedantic(
        lambda: experiment_table5(quick_config), rounds=1, iterations=1
    )
    print()
    print(
        format_table5(
            rows,
            f"Table 5: cluster (p={quick_config.threads_per_node}, "
            f"c={quick_config.table5_syncs}, "
            f"schedule={quick_config.table5_schedule})",
        )
    )

    speeds_up = 0
    for row in rows:
        for policy in ("static", "dynamic"):
            sp = row[f"{policy}_speedups"]
            ln = row[f"{policy}_label_sizes"]
            assert sp[0] == 1.0
            # Label size grows with cluster size (Table 5's LN columns).
            assert ln[-1] >= ln[0]
        if row["dynamic_speedups"][-1] > 1.0:
            speeds_up += 1
    # The majority of datasets must show a positive multi-node speedup.
    assert speeds_up >= len(rows) // 2 + 1
