"""The abstract's headline claims on the largest dataset.

Paper: "9.46 times faster than the corresponding serial version on a
weighted 0.3M-vertex graph using a 12-core computer" and "a 6-node
computer cluster can also achieve a speedup of up to 5.6 over the
single-node implementation".  We assert the direction and a meaningful
magnitude at reproduction scale.
"""

from repro.bench.harness import experiment_headline
from repro.bench.tables import format_headline


def test_headline_speedups(benchmark, quick_config):
    result = benchmark.pedantic(
        lambda: experiment_headline(quick_config), rounds=1, iterations=1
    )
    print()
    print(format_headline(result))
    assert result["dataset"] == "Skitter"
    # 12 virtual threads: a substantial intra-node speedup.
    assert result["intra_speedup"] > 4.0
    # 6 simulated nodes: a positive cluster speedup.
    assert result["cluster_speedup"] > 1.0
