"""Benchmarks for the extension features beyond the paper's core.

* kNN via inverted labels vs. the naive full scan,
* incremental edge insertion vs. full rebuild,
* pruned BFS vs. pruned Dijkstra on unit weights (the setting of the
  paper's reference [11], which ParaPLL generalises).
"""

import random

import pytest

from repro.core.dynamic import DynamicPLL
from repro.core.index import PLLIndex
from repro.core.knn import KNNIndex
from repro.core.pruned_bfs import build_serial_bfs
from repro.core.serial import build_serial
from repro.errors import GraphError
from repro.generators.paper import load_dataset

from conftest import bench_scale


@pytest.fixture(scope="module")
def graph():
    return load_dataset("Epinions", scale=bench_scale(), seed=42)


@pytest.fixture(scope="module")
def index(graph):
    return PLLIndex.build(graph)


def test_knn_inverted_labels(benchmark, graph, index):
    knn = KNNIndex(index.store)
    rng = random.Random(0)
    sources = [rng.randrange(graph.num_vertices) for _ in range(64)]
    benchmark(lambda: [knn.k_nearest(s, 10) for s in sources])


def test_knn_naive_scan(benchmark, graph, index):
    rng = random.Random(0)
    sources = [rng.randrange(graph.num_vertices) for _ in range(8)]

    def naive(s):
        scored = sorted(
            (index.distance(s, v), v)
            for v in range(graph.num_vertices)
            if v != s
        )
        return scored[:10]

    benchmark(lambda: [naive(s) for s in sources])


def test_dynamic_insertion_vs_rebuild(benchmark, graph):
    def run():
        dyn = DynamicPLL(PLLIndex.build(graph))
        rng = random.Random(3)
        inserted = 0
        while inserted < 10:
            a = rng.randrange(graph.num_vertices)
            b = rng.randrange(graph.num_vertices)
            try:
                dyn.insert_edge(a, b, float(rng.randint(1, 10)))
                inserted += 1
            except GraphError:
                continue
        return dyn.store.total_entries

    entries = benchmark.pedantic(run, rounds=1, iterations=1)
    assert entries > 0


def test_bfs_vs_dijkstra_unit_weights(benchmark, graph):
    """Unweighted PLL is faster and produces the identical label set."""
    unit = graph.unit_weighted()

    def run():
        import time

        t0 = time.perf_counter()
        bfs_store, _ = build_serial_bfs(unit)
        t_bfs = time.perf_counter() - t0
        t0 = time.perf_counter()
        dij_store, _ = build_serial(unit)
        t_dij = time.perf_counter() - t0
        return bfs_store, dij_store, t_bfs, t_dij

    bfs_store, dij_store, t_bfs, t_dij = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\n  pruned BFS {t_bfs:.2f}s vs pruned Dijkstra {t_dij:.2f}s")
    assert bfs_store == dij_store
    assert t_bfs < t_dij  # no heap, no log factor
