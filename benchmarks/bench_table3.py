"""Table 3: intra-node ParaPLL with the STATIC assignment policy.

Regenerates, for every dataset: serial PLL indexing time, the simulated
1-thread time, speedups at 2-12 threads, and average label size (LN)
per thread count.  Shape checks assert the paper's qualitative claims.
"""

from repro.bench.harness import experiment_table34
from repro.bench.tables import format_speedup_table


def test_table3_static_policy(benchmark, config):
    rows = benchmark.pedantic(
        lambda: experiment_table34(config, "static"), rounds=1, iterations=1
    )
    print()
    print(format_speedup_table(rows, "Table 3: intra-node, STATIC policy"))

    for row in rows:
        sp = row["speedups"]
        ln = row["label_sizes"]
        # 1-thread ParaPLL ~ serial PLL (paper: "almost equals").
        assert abs(row["seconds"][0] - row["pll_seconds"]) < max(
            0.15 * row["pll_seconds"], 0.05
        )
        # Speedup grows from 1 thread to 12 threads.
        assert sp[-1] > sp[0]
        assert sp[-1] > 2.0
        # Sub-linear: never beats the thread count.
        for p, s in zip(row["workers"], sp):
            assert s <= p + 1e-9
        # Label size grows only modestly with threads (paper §5.2.2).
        assert ln[-1] >= ln[0]
        assert ln[-1] <= 2.5 * ln[0]
