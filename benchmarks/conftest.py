"""Shared configuration for the paper-reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper at a
reduced default scale so the whole suite stays tractable on one core
(set ``REPRO_BENCH_SCALE`` to change it, e.g. ``REPRO_BENCH_SCALE=1.0``)
and prints the paper-style rendering to stdout.  Run with::

    pytest benchmarks/ --benchmark-only

For full-scale runs with CSV output use the standalone harness::

    python -m repro.bench --experiment all --out results/
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import BenchConfig


def bench_scale() -> float:
    """Dataset scale for benchmark runs (env-overridable)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    """One shared config so serial references are computed once."""
    return BenchConfig(
        scale=bench_scale(),
        seed=42,
        workers=(1, 2, 4, 6, 8, 10, 12),
        nodes=(1, 2, 3, 4, 5, 6),
        threads_per_node=6,
        fig7_syncs=(1, 2, 4, 8, 16, 32, 64, 128),
        fig7_datasets=("Gnutella", "CondMat"),
        verify_samples=1,
    )


@pytest.fixture(scope="session")
def quick_config() -> BenchConfig:
    """A smaller sweep for the expensive cluster experiments."""
    return BenchConfig(
        scale=bench_scale(),
        seed=42,
        workers=(1, 4, 12),
        nodes=(1, 2, 4, 6),
        threads_per_node=6,
        fig7_syncs=(1, 4, 16, 64),
        fig7_datasets=("Gnutella",),
        verify_samples=1,
    )
