"""Micro-benchmarks of the hot kernels (real pytest-benchmark timing).

These are the only benchmarks where repeated timed rounds make sense:
individual root searches, distance queries, and the priority queues
that the ablation in DESIGN.md §5 compares.
"""

import random

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.index import PLLIndex
from repro.core.labels import LabelStore
from repro.core.pruned_dijkstra import PrunedDijkstra
from repro.core.query import query_distance, query_numpy
from repro.generators.paper import load_dataset
from repro.graph.order import by_degree
from repro.pq import PQ_IMPLEMENTATIONS

from conftest import bench_scale


@pytest.fixture(scope="module")
def graph():
    return load_dataset("Gnutella", scale=bench_scale(), seed=42)


@pytest.fixture(scope="module")
def index(graph):
    return PLLIndex.build(graph)


def test_micro_dijkstra_sssp(benchmark, graph):
    benchmark(dijkstra_sssp, graph, 0)


def test_micro_pruned_dijkstra_first_root(benchmark, graph):
    engine = PrunedDijkstra(graph, by_degree(graph))
    store = LabelStore(graph.num_vertices)
    root = int(engine.order[0])
    benchmark(engine.run, root, store)


def test_micro_pruned_dijkstra_late_root(benchmark, graph, index):
    """A root search against a fully built label set (heavy pruning)."""
    engine = PrunedDijkstra(graph, index.order)
    root = int(index.order[-1])
    benchmark(engine.run, root, index.store)


def test_micro_serial_index_build(benchmark, graph):
    benchmark.pedantic(
        lambda: PLLIndex.build(graph), rounds=2, iterations=1
    )


def test_micro_query_merge_join(benchmark, index):
    rng = random.Random(0)
    n = index.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(256)]

    def run():
        total = 0.0
        for s, t in pairs:
            d = query_distance(index.store, s, t)
            if d != float("inf"):
                total += d
        return total

    benchmark(run)


def test_micro_query_numpy_join(benchmark, index):
    rng = random.Random(0)
    n = index.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(256)]

    def run():
        total = 0.0
        for s, t in pairs:
            d = query_numpy(index.store, s, t)
            if d != float("inf"):
                total += d
        return total

    benchmark(run)


@pytest.mark.parametrize("pq_name", list(PQ_IMPLEMENTATIONS))
def test_micro_priority_queue_dijkstra(benchmark, graph, pq_name):
    """The priority-queue ablation: full Dijkstra per implementation."""
    benchmark(
        dijkstra_sssp, graph, 0, PQ_IMPLEMENTATIONS[pq_name]
    )
