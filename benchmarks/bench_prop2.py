"""Proposition 2: the pruning-efficiency-loss bound vs. measurement.

The paper bounds the static policy's efficiency loss by the ψ gaps
inside each p-wide dispatch window.  We compute the bound with exact
Brandes ψ values and compare it with the measured label redundancy of
simulated runs: both must start at zero for p = 1 and grow with p.
"""

import pytest

from repro.efficiency import efficiency_loss_study
from repro.generators.paper import load_dataset

from conftest import bench_scale


@pytest.fixture(scope="module")
def graph():
    # Exact betweenness is O(nm); use a modest stand-in.
    return load_dataset("Gnutella", scale=min(bench_scale(), 0.5), seed=42)


def test_prop2_bound_vs_measured(benchmark, graph):
    report = benchmark.pedantic(
        lambda: efficiency_loss_study(graph, workers=(1, 2, 4, 8, 12)),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        "(bound is in pruning-potential units, growth in label entries —"
        " correlated, not comparable)"
    )
    print(f"{'p':>4} {'Prop-2 bound':>14} {'measured growth':>16}")
    for p, bound, red in zip(
        report.workers, report.bounds, report.redundancy
    ):
        print(f"{p:>4} {bound:>13.1%} {red:>15.1%}")

    assert report.bounds[0] == 0.0
    assert report.redundancy[0] == 0.0
    # The bound is monotone in p.
    for a, b in zip(report.bounds, report.bounds[1:]):
        assert b >= a
    # Measured redundancy grows overall and stays below the worst case
    # implied by full potential loss.
    assert report.redundancy[-1] > 0.0
    assert report.bounds[-1] <= 1.0
