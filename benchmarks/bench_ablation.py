"""Ablations of the design choices called out in DESIGN.md §5.

* vertex ordering: degree vs. approx-ψ vs. random (pruning power),
* label visibility model: completion vs. immediate (bounds),
* dynamic chunk size: 1 (paper) vs. larger grabs,
* cluster sync schedule: uniform vs. early at equal sync counts.
"""

import pytest

from repro.bench.harness import serial_reference
from repro.cluster.network import NetworkModel
from repro.cluster.parapll import simulate_cluster
from repro.core.serial import build_serial
from repro.generators.paper import load_dataset
from repro.graph.order import by_approx_betweenness, by_degree, by_random
from repro.sim.executor import simulate_intra_node

from conftest import bench_scale


@pytest.fixture(scope="module")
def graph():
    return load_dataset("Gnutella", scale=bench_scale(), seed=42)


def test_ablation_vertex_ordering(benchmark, graph):
    """Degree and ψ orderings prune far better than random."""

    from repro.graph.centrality import by_exact_betweenness

    def run():
        out = {}
        for name, order in (
            ("degree", by_degree(graph)),
            ("psi-sampled", by_approx_betweenness(graph, samples=24)),
            ("psi-exact", by_exact_betweenness(graph)),
            ("random", by_random(graph, seed=0)),
        ):
            store, stats = build_serial(graph, order=order)
            out[name] = (store.total_entries, stats.build_seconds)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, (entries, secs) in out.items():
        print(f"  ordering={name:12s} entries={entries:7d} IT={secs:6.2f}s")
    assert out["degree"][0] < out["random"][0]
    assert out["psi-sampled"][0] < out["random"][0]
    assert out["psi-exact"][0] < out["random"][0]


def test_ablation_visibility_model(benchmark, graph):
    """Immediate sharing bounds the pruning loss of completion commits."""

    def run():
        comp, _ = simulate_intra_node(graph, 8, visibility="completion")
        imm, _ = simulate_intra_node(graph, 8, visibility="immediate")
        return comp.store.total_entries, imm.store.total_entries

    comp_entries, imm_entries = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n  completion-visibility entries={comp_entries}, "
        f"immediate={imm_entries}"
    )
    assert imm_entries <= comp_entries


def test_ablation_dynamic_chunk_size(benchmark, graph):
    """Bigger grabs reduce queue traffic but degrade the ordering."""
    _store, _stats, cost = serial_reference(graph)

    def run():
        out = {}
        for chunk in (1, 4, 16):
            index, r = simulate_intra_node(
                graph, 8, policy="dynamic", chunk=chunk, cost_model=cost,
                jitter=0.15, worker_jitter=0.25, seed=5,
            )
            out[chunk] = (r.makespan, index.store.total_entries)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for chunk, (makespan, entries) in out.items():
        print(f"  chunk={chunk:3d} IT={makespan:8.3f}s entries={entries}")
    # All chunk sizes stay within 2x of the paper's chunk=1 makespan.
    base = out[1][0]
    for makespan, _e in out.values():
        assert makespan < 2.0 * base


def test_ablation_sync_schedule(benchmark, graph):
    """At equal sync counts, the early schedule prunes better."""
    _store, _stats, cost = serial_reference(graph)
    net = NetworkModel(latency_units=50, per_entry_units=0.05)

    def run():
        out = {}
        for schedule in ("uniform", "early"):
            index, r = simulate_cluster(
                graph, 4, threads_per_node=4, syncs=4,
                sync_schedule=schedule, cost_model=cost, network=net,
            )
            out[schedule] = (r.makespan, index.store.total_entries)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for schedule, (makespan, entries) in out.items():
        print(f"  schedule={schedule:8s} IT={makespan:8.3f}s entries={entries}")
    assert out["early"][1] <= out["uniform"][1]


def test_ablation_inter_node_partition(benchmark, graph):
    """Region partition vs. the paper's round robin at one final sync.

    A BFS-grown region keeps the hubs that cover a node's own roots
    local, shrinking the isolated-pruning label explosion — a finding
    of this reproduction (the paper only evaluates round robin).
    """
    net = NetworkModel(latency_units=50, per_entry_units=0.05)

    def run():
        out = {}
        for part in ("round-robin", "region"):
            index, _r = simulate_cluster(
                graph, 4, threads_per_node=4, syncs=1,
                network=net, inter_node=part,
            )
            out[part] = index.store.total_entries
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n  round-robin: {out['round-robin']} entries; "
        f"region: {out['region']} entries"
    )
    assert out["region"] < out["round-robin"]


def test_ablation_replicate_top(benchmark, graph):
    """Replicating the top-K hubs trades duplicate work for pruning."""
    net = NetworkModel(latency_units=50, per_entry_units=0.05)

    def run():
        out = {}
        for k in (0, 16):
            index, _r = simulate_cluster(
                graph, 4, threads_per_node=4, syncs=1, replicate_top=k,
                network=net,
            )
            out[k] = index.store.total_entries
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  replicate_top=0: {out[0]} entries; =16: {out[16]} entries")
    assert out[16] < out[0]
