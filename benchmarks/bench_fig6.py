"""Figure 6: cumulative label creation by pruned-Dijkstra invocation.

Reproduces the observation that ~90 % of all label entries are created
by a small prefix of root searches, and that ParaPLL's curve (static
and dynamic) tracks serial PLL's — i.e. no apparent pruning-efficiency
gap (§5.4.1).
"""

import numpy as np

from repro.bench.figures import format_fig6
from repro.bench.harness import experiment_fig6
from repro.core.stats import roots_to_reach


def test_fig6_label_cdf(benchmark, config):
    curves = benchmark.pedantic(
        lambda: experiment_fig6(config, dataset="Gnutella", p=8),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig6(curves, "Gnutella"))

    serial = np.asarray(curves["PLL (serial)"])
    n = len(serial)
    k90_serial = roots_to_reach(serial, 0.9)
    # Heavy front-loading: 90% of labels in well under half the roots.
    assert k90_serial < 0.5 * n

    for name, curve in curves.items():
        if name.startswith("PLL"):
            continue
        k90 = roots_to_reach(np.asarray(curve), 0.9)
        # ParaPLL's curve tracks serial PLL's front-loading closely.
        assert k90 < 0.6 * n
