"""Index-family comparison: PLL vs. Contraction Hierarchies vs. APSP.

The paper's introduction frames PLL against the naive full table and
against road-network techniques.  This bench builds all three indexes
(plus the no-index online baseline) on a social and a road stand-in and
reports indexing time, space (stored entries) and mean query latency —
the classic three-way tradeoff table.
"""

import random
import time

import pytest

from repro.baselines.apsp import APSPIndex
from repro.baselines.ch import ContractionHierarchy
from repro.baselines.dijkstra import dijkstra_pair
from repro.core.index import PLLIndex
from repro.generators.paper import load_dataset

from conftest import bench_scale


@pytest.mark.parametrize("dataset", ["Gnutella", "DE-USA"])
def test_index_family_tradeoffs(benchmark, dataset):
    graph = load_dataset(dataset, scale=min(bench_scale(), 0.5), seed=42)
    rng = random.Random(0)
    pairs = [
        (rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices))
        for _ in range(200)
    ]

    def run():
        out = {}
        t0 = time.perf_counter()
        pll = PLLIndex.build(graph)
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        for s, t in pairs:
            pll.distance(s, t)
        out["PLL"] = (t_build, pll.store.total_entries,
                      (time.perf_counter() - t0) / len(pairs))

        ch = ContractionHierarchy(graph)
        t0 = time.perf_counter()
        ch.build()
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        for s, t in pairs:
            ch.query(s, t)
        out["CH"] = (t_build, ch.stats.total_entries,
                     (time.perf_counter() - t0) / len(pairs))

        apsp = APSPIndex(graph)
        t0 = time.perf_counter()
        apsp.build()
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        for s, t in pairs:
            apsp.query(s, t)
        out["APSP"] = (t_build, apsp.stats.total_entries,
                       (time.perf_counter() - t0) / len(pairs))

        t0 = time.perf_counter()
        for s, t in pairs[:20]:
            dijkstra_pair(graph, s, t)
        out["online"] = (0.0, 0, (time.perf_counter() - t0) / 20)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[{dataset}] n={graph.num_vertices}")
    print(f"{'method':<8} {'index(s)':>9} {'entries':>9} {'query(us)':>10}")
    for method, (build, entries, query) in out.items():
        print(
            f"{method:<8} {build:>9.2f} {entries:>9} {query * 1e6:>10.1f}"
        )

    # The tradeoff shape: every index beats online queries; APSP has
    # the biggest space; PLL and CH both index far faster than APSP on
    # these sizes is NOT guaranteed (APSP is n Dijkstras too), but
    # their space must be far smaller.
    for method in ("PLL", "CH", "APSP"):
        assert out[method][2] < out["online"][2]
    assert out["PLL"][1] < out["APSP"][1]
    assert out["CH"][1] < out["APSP"][1]
