"""Table 4: intra-node ParaPLL with the DYNAMIC assignment policy.

Also asserts the paper's §5.4.2 comparison: aggregated over datasets,
dynamic assignment beats static at high thread counts because the work
queue absorbs persistent per-worker slowdowns.
"""

from repro.bench.harness import experiment_table34
from repro.bench.tables import format_speedup_table


def test_table4_dynamic_policy(benchmark, config):
    rows = benchmark.pedantic(
        lambda: experiment_table34(config, "dynamic"), rounds=1, iterations=1
    )
    print()
    print(format_speedup_table(rows, "Table 4: intra-node, DYNAMIC policy"))

    for row in rows:
        sp = row["speedups"]
        assert sp[-1] > 2.0
        for p, s in zip(row["workers"], sp):
            assert s <= p + 1e-9
        assert row["label_sizes"][-1] <= 2.5 * row["label_sizes"][0]


def test_dynamic_beats_static_in_aggregate(benchmark, config):
    static, dynamic = benchmark.pedantic(
        lambda: (
            experiment_table34(config, "static"),
            experiment_table34(config, "dynamic"),
        ),
        rounds=1,
        iterations=1,
    )
    static_final = sum(r["speedups"][-1] for r in static)
    dynamic_final = sum(r["speedups"][-1] for r in dynamic)
    print(
        f"\nmean 12-thread speedup: static "
        f"{static_final / len(static):.2f} vs dynamic "
        f"{dynamic_final / len(dynamic):.2f}"
    )
    assert dynamic_final > static_final
