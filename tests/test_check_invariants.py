"""Tests for the label-invariant verifier (repro.check.invariants)."""

import numpy as np
import pytest

from repro.check.invariants import verify_index
from repro.core.index import PLLIndex
from repro.core.labels import LabelStore
from repro.errors import CheckError
from repro.parallel.threads import build_parallel_threads


def checks_by_name(report):
    return {c.name: c.status for c in report.checks}


class TestCleanIndexes:
    def test_serial_build_passes_strict(self, random_graph):
        index = PLLIndex.build(random_graph)
        report = verify_index(
            index, samples=24, seed=3, strict_minimality=True
        )
        assert report.ok, report.render()
        assert report.redundant_labels == 0
        assert report.sampled_pairs >= 24

    def test_parallel_build_passes(self, random_graph):
        index = build_parallel_threads(random_graph, 4, policy="dynamic")
        report = verify_index(index, samples=24, seed=3)
        assert report.ok, report.render()

    def test_path_graph(self, path_graph):
        report = verify_index(PLLIndex.build(path_graph), samples=8)
        assert report.ok
        assert checks_by_name(report)["two_hop_exact"] == "passed"

    def test_no_graph_skips_exactness(self, random_graph):
        index = PLLIndex.build(random_graph)
        index.graph = None
        report = verify_index(index, samples=16)
        assert checks_by_name(report)["two_hop_exact"] == "skipped"
        assert report.ok  # skipped checks don't fail

    def test_minimality_can_be_disabled(self, random_graph):
        index = PLLIndex.build(random_graph)
        report = verify_index(index, samples=0, check_minimality=False)
        by_name = checks_by_name(report)
        assert by_name["minimality"] == "skipped"
        assert by_name["two_hop_exact"] == "skipped"

    def test_report_lookup_unknown_check(self, path_graph):
        report = verify_index(PLLIndex.build(path_graph), samples=0)
        with pytest.raises(CheckError):
            report.check("nonsense")


def _with_entry_dropped(store, pos):
    """A new store with the flat-array entry at *pos* removed."""
    indptr, hubs, dists = store.finalized_arrays()
    v = int(np.searchsorted(indptr, pos, side="right") - 1)
    new_indptr = indptr.copy()
    new_indptr[v + 1:] -= 1
    return LabelStore.from_arrays(
        new_indptr, np.delete(hubs, pos), np.delete(dists, pos)
    )


def _with_entry_inserted(store, v, hub, dist):
    """A new store with (hub, dist) inserted into L(v), sorted."""
    indptr, hubs, dists = store.finalized_arrays()
    run = hubs[int(indptr[v]):int(indptr[v + 1])]
    pos = int(indptr[v]) + int(np.searchsorted(run, hub))
    new_indptr = indptr.copy()
    new_indptr[v + 1:] += 1
    return LabelStore.from_arrays(
        new_indptr, np.insert(hubs, pos, hub), np.insert(dists, pos, dist)
    )


class TestCorruptedIndexes:
    """Tamper with finalized labels; the verifier must catch each case.

    Structural tampering goes through the writable zero-copy slices
    (`finalized_hubs/dists(v)`) or rebuilds the flat CSR arrays; the
    verifier reads through the same public accessors.
    """

    @pytest.fixture
    def index(self, random_graph):
        idx = PLLIndex.build(random_graph)
        idx.store.finalize()  # idempotent: later tampering sticks
        return idx

    def test_unsorted_hubs_detected(self, index):
        store = index.store
        v = next(
            u for u in range(index.num_vertices)
            if len(store.finalized_hubs(u)) >= 2
        )
        run = store.finalized_hubs(v)
        run[:] = run[::-1].copy()
        report = verify_index(index, samples=0, check_minimality=False)
        assert checks_by_name(report)["hubs_sorted"] == "failed"
        assert any(f.vertex == v for f in report.violations)

    def test_negative_distance_detected(self, index):
        index.store.finalized_dists(1)[0] = -0.5
        report = verify_index(index, samples=0, check_minimality=False)
        assert checks_by_name(report)["distances_valid"] == "failed"

    def test_nan_distance_detected(self, index):
        index.store.finalized_dists(1)[0] = float("nan")
        report = verify_index(index, samples=0, check_minimality=False)
        assert checks_by_name(report)["distances_valid"] == "failed"

    def test_missing_self_label_detected(self, index):
        v = 2
        r = int(index.rank[v])
        indptr, _, _ = index.store.finalized_arrays()
        run = index.store.finalized_hubs(v)
        pos = int(indptr[v]) + int(np.flatnonzero(run == r)[0])
        index.store = _with_entry_dropped(index.store, pos)
        report = verify_index(index, samples=0, check_minimality=False)
        assert checks_by_name(report)["self_label"] == "failed"

    def test_wrong_distances_fail_exactness(self, index, random_graph):
        # Scale every label distance by 1.5 (self labels stay 0): all
        # structural checks still pass, but every reachable pair now
        # answers 1.5x too long — only the Dijkstra comparison sees it.
        _, _, dists = index.store.finalized_arrays()
        dists *= 1.5
        report = verify_index(
            index, graph=random_graph, samples=64, seed=0,
            check_minimality=False,
        )
        assert checks_by_name(report)["two_hop_exact"] == "failed"
        assert not report.ok

    def test_redundant_label_counted_and_strict_fails(self, index):
        # Inject a label (rank[u], d) into L(v) that a common earlier
        # hub already covers: legal for parallel builds (counted),
        # fatal under strict minimality (serial builds are canonical).
        store = index.store
        candidates = [
            w for w in range(index.num_vertices)
            if len(store.finalized_hubs(w))
            and store.finalized_hubs(w)[0] == 0
        ]
        v, u = candidates[0], candidates[1]
        h = int(index.rank[u])
        assert h > 0
        assert h not in store.finalized_hubs(v)  # not already labelled
        # Distance long enough that the shared hub 0 dominates it.
        d_dom = float(
            store.finalized_dists(v)[0] + store.finalized_dists(u)[0]
        ) + 5.0
        index.store = _with_entry_inserted(store, v, h, d_dom)

        loose = verify_index(index, samples=0, check_minimality=True)
        strict = verify_index(index, samples=0, strict_minimality=True)
        assert loose.redundant_labels >= 1
        assert checks_by_name(loose)["minimality"] == "passed"
        assert checks_by_name(strict)["minimality"] == "failed"

    def test_render_lists_violations(self, index):
        index.store.finalized_dists(1)[0] = -1.0
        report = verify_index(index, samples=0, check_minimality=False)
        text = report.render()
        assert "FAIL" in text
        assert "distances_valid" in text
