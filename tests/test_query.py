"""Tests for the QUERY(s, t, L) implementations."""

import math

import numpy as np
import pytest

from repro.core.labels import LabelStore
from repro.core.query import (
    clear_tmp,
    load_tmp,
    query_candidates,
    query_distance,
    query_distance_batch,
    query_numpy,
    query_result,
    query_via_tmp,
)

INF = math.inf


@pytest.fixture
def store():
    """A tiny 2-hop cover: hub 0 reaches everything; hub 1 helps 2-3."""
    s = LabelStore(4)
    s.add_delta(
        [
            (0, 0, 0.0),
            (1, 0, 1.0),
            (2, 0, 3.0),
            (3, 0, 6.0),
            (2, 1, 1.0),
            (3, 1, 2.0),
        ]
    )
    s.finalize()
    return s


class TestQueryDistance:
    def test_same_vertex(self, store):
        assert query_distance(store, 2, 2) == 0.0

    def test_common_hub_minimum(self, store):
        # 2-3: via hub 0 = 9, via hub 1 = 3.
        assert query_distance(store, 2, 3) == 3.0

    def test_single_hub(self, store):
        assert query_distance(store, 0, 1) == 1.0

    def test_no_common_hub(self):
        s = LabelStore(2)
        s.add(0, 0, 0.0)
        s.add(1, 1, 0.0)
        s.finalize()
        assert query_distance(s, 0, 1) == INF

    def test_empty_labels(self):
        s = LabelStore(2)
        s.finalize()
        assert query_distance(s, 0, 1) == INF


class TestQueryResult:
    def test_reports_hub(self, store):
        res = query_result(store, 2, 3)
        assert res.distance == 3.0
        assert res.hub == 1
        assert res.reachable
        assert res.entries_scanned > 0

    def test_same_vertex(self, store):
        res = query_result(store, 1, 1)
        assert res.distance == 0.0
        assert res.hub is None

    def test_unreachable(self):
        s = LabelStore(2)
        s.add(0, 0, 0.0)
        s.add(1, 1, 0.0)
        s.finalize()
        res = query_result(s, 0, 1)
        assert not res.reachable
        assert res.hub is None

    def test_entries_scanned_counts_consumed_entries(self, store):
        # L(2) = [(0, 3), (1, 1)]; L(3) = [(0, 6), (1, 2)].  The merge
        # join consumes both sides fully: i + j = 4.
        assert query_result(store, 2, 3).entries_scanned == 4

    def test_entries_scanned_matches_explain_accounting(self, store):
        # Satellite fix: QueryResult.entries_scanned must equal the
        # per-side consumed counts query_candidates reports to EXPLAIN.
        for s in range(4):
            for t in range(4):
                if s == t:
                    continue
                _, i, j = query_candidates(store, s, t)
                assert query_result(store, s, t).entries_scanned == i + j


class TestAgreement:
    def test_numpy_matches_merge(self, store):
        for s in range(4):
            for t in range(4):
                assert query_numpy(store, s, t) == query_distance(store, s, t)

    def test_tmp_matches_merge(self, store):
        tmp = [INF] * 4
        for s in range(4):
            touched = load_tmp(tmp, store, s, None)
            for t in range(4):
                if s == t:
                    continue
                got = query_via_tmp(tmp, store.hubs_of(t), store.dists_of(t))
                assert got == query_distance(store, s, t)
            clear_tmp(tmp, touched)
            assert all(x == INF for x in tmp)


class TestBatch:
    def test_matches_scalar_on_fixture(self, store):
        pairs = [(s, t) for s in range(4) for t in range(4)]
        out = query_distance_batch(store, pairs)
        assert out.tolist() == [
            query_distance(store, s, t) for s, t in pairs
        ]

    def test_vectorized_path_matches_scalar(self, store):
        # Repeat the pair grid past the fallback threshold so the
        # composite-key join runs.
        pairs = [(s, t) for s in range(4) for t in range(4)] * 10
        out = query_distance_batch(store, pairs)
        assert len(pairs) >= 32
        assert out.tolist() == [
            query_distance(store, s, t) for s, t in pairs
        ]

    def test_dtype_and_shape(self, store):
        out = query_distance_batch(store, [(0, 1)])
        assert out.dtype == np.float64
        assert out.shape == (1,)

    def test_duplicate_pairs(self, store):
        out = query_distance_batch(store, [(2, 3)] * 40)
        assert out.tolist() == [query_distance(store, 2, 3)] * 40


class TestTmpHelpers:
    def test_load_with_extra(self, store):
        tmp = [INF] * 4
        touched = load_tmp(tmp, store, 1, (3, 0.0))
        assert tmp[0] == 1.0
        assert tmp[3] == 0.0
        clear_tmp(tmp, touched)
        assert all(x == INF for x in tmp)

    def test_load_duplicate_keeps_min(self):
        s = LabelStore(1)
        s.add(0, 0, 5.0)
        s.add(0, 0, 2.0)
        tmp = [INF]
        load_tmp(tmp, s, 0, None)
        assert tmp[0] == 2.0

    def test_query_via_tmp_empty_label(self):
        assert query_via_tmp([INF], [], []) == INF
