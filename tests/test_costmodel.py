"""Tests for the simulator cost model."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.costmodel import CostModel, calibrate_cost_model
from repro.types import SearchStats


def make_stats(**kw):
    base = dict(
        settled=10,
        pruned=2,
        labels_added=8,
        relaxations=30,
        heap_pushes=25,
        heap_pops=27,
        query_entries_scanned=40,
    )
    base.update(kw)
    return SearchStats(**base)


class TestUnits:
    def test_search_units_formula(self):
        cm = CostModel(
            per_heap_op=1.0,
            per_relaxation=0.5,
            per_scan=0.25,
            per_settle=2.0,
            n=16,
        )
        s = make_stats()
        expected = (
            1.0 * (25 + 27) * math.log2(16)
            + 0.5 * 30
            + 0.25 * 40
            + 2.0 * 10
        )
        assert cm.search_units(s) == pytest.approx(expected)

    def test_commit_units(self):
        cm = CostModel(per_label_commit=3.0)
        assert cm.commit_units(7) == 21.0

    def test_task_units_sums_parts(self):
        cm = CostModel(task_overhead=5.0).for_graph(8)
        s = make_stats()
        assert cm.task_units(s) == pytest.approx(
            5.0 + cm.search_units(s) + cm.commit_units(s.labels_added)
        )

    def test_seconds_scaling(self):
        cm = CostModel(seconds_per_unit=0.5)
        assert cm.seconds(10.0) == 5.0

    def test_for_graph_floor(self):
        cm = CostModel().for_graph(0)
        assert cm.n == 2

    def test_for_graph_negative(self):
        with pytest.raises(SimulationError):
            CostModel().for_graph(-1)

    def test_calibrated_validates(self):
        with pytest.raises(SimulationError):
            CostModel().calibrated(0.0)


class TestCalibration:
    def test_total_equals_measured(self):
        per_root = [make_stats() for _ in range(10)]
        cm = calibrate_cost_model(per_root, measured_seconds=2.0, n=100)
        total = sum(cm.seconds(cm.task_units(s)) for s in per_root)
        assert total == pytest.approx(2.0)

    def test_zero_time_rejected(self):
        with pytest.raises(SimulationError):
            calibrate_cost_model([make_stats()], 0.0, 10)

    def test_empty_run_rejected(self):
        with pytest.raises(SimulationError):
            calibrate_cost_model([], 1.0, 10)

    def test_custom_base_preserved(self):
        base = CostModel(per_relaxation=9.0)
        cm = calibrate_cost_model([make_stats()], 1.0, 10, base=base)
        assert cm.per_relaxation == 9.0
        assert cm.n == 10
