"""Shared fixtures: small hand-built graphs and seeded random graphs."""

from __future__ import annotations

import pytest

from repro.generators.random_graphs import gnm_random_graph
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph


@pytest.fixture(scope="session", autouse=True)
def _lockset_sanitizer_from_env():
    """Install a race sanitizer when PARAPLL_SANITIZE is set.

    ``PARAPLL_SANITIZE=vc`` selects the vector-clock (happens-before)
    engine; any other truthy value selects the lockset engine.  CI's
    lint-and-sanitize job runs the threaded tests with the flag on; any
    race in the commit path, the dynamic queue, or the thread
    communicator fails the session at teardown with full stacks.
    """
    from repro.check.sanitizer import enable_from_env

    sanitizer = enable_from_env()
    yield
    if sanitizer is not None:
        sanitizer.uninstall()
        assert sanitizer.ok, "\n" + sanitizer.render()


def build_graph(edges, n=None, name="test") -> CSRGraph:
    """Helper: build a CSR graph from (u, v, w) triples."""
    b = GraphBuilder(num_vertices=n)
    b.add_edges(edges)
    return b.build(name=name)


@pytest.fixture
def path_graph() -> CSRGraph:
    """0 -1- 1 -2- 2 -3- 3: a weighted path."""
    return build_graph([(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)], name="path4")


@pytest.fixture
def triangle() -> CSRGraph:
    """Triangle where the direct edge 0-2 is longer than the detour."""
    return build_graph(
        [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)], name="triangle"
    )


@pytest.fixture
def star_graph() -> CSRGraph:
    """Star: hub 0 with 5 leaves at varying weights."""
    return build_graph(
        [(0, i, float(i)) for i in range(1, 6)], name="star6"
    )


@pytest.fixture
def two_components() -> CSRGraph:
    """Two disjoint edges: {0,1} and {2,3}."""
    return build_graph(
        [(0, 1, 1.0), (2, 3, 2.0)], n=5, name="twocomp"
    )  # vertex 4 isolated


@pytest.fixture
def random_graph() -> CSRGraph:
    """A small connected seeded random graph."""
    return gnm_random_graph(40, 100, seed=7)


@pytest.fixture
def medium_graph() -> CSRGraph:
    """A slightly larger seeded random graph for integration tests."""
    return gnm_random_graph(120, 400, seed=11)
