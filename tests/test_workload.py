"""Tests for workload characterization (repro.obs.workload)."""

import math

import pytest

from repro.core.index import PLLIndex
from repro.obs.qlog import QueryLogRecorder, recording
from repro.obs.workload import (
    WORKLOAD_SCHEMA,
    characterize,
    exact_quantile,
    fit_zipf,
    render_workload,
    simulate_cache_curve,
)
from repro.service import DistanceOracle


def record(s, t, latency=10.0, op="distance", hit=False, outcome="ok"):
    return {
        "op": op,
        "s": s,
        "t": t,
        "latency_us": latency,
        "cache_hit": hit,
        "outcome": outcome,
    }


class TestFitZipf:
    def test_recovers_known_exponent(self):
        alpha = 1.2
        counts = [
            int(round(100000 * rank**-alpha)) for rank in range(1, 101)
        ]
        fitted, r2 = fit_zipf(counts)
        assert fitted == pytest.approx(alpha, abs=0.05)
        assert r2 > 0.99

    def test_constant_counts_have_no_slope(self):
        # A flat curve is a perfect alpha=0 power law.
        alpha, r2 = fit_zipf([5, 5, 5, 5])
        assert alpha == 0.0 and r2 == 1.0

    def test_too_few_items(self):
        assert fit_zipf([7]) == (0.0, 0.0)
        assert fit_zipf([]) == (0.0, 0.0)
        # Zero counts are dropped before ranking.
        assert fit_zipf([7, 0]) == (0.0, 0.0)


class TestCacheCurve:
    def test_known_hit_rates(self):
        # Sequence: a b a b with symmetric-key canonicalization.
        pairs = [(0, 1), (2, 3), (1, 0), (3, 2)]
        curve = dict(simulate_cache_curve(pairs, sizes=(1, 2)))
        # size 1: a b evicts a, then a misses, b... -> 0 hits
        assert curve[1] == 0.0
        # size 2: both residents, the two repeats hit.
        assert curve[2] == 0.5

    def test_clipped_at_unique_pairs(self):
        pairs = [(0, 1), (0, 2), (0, 3)]
        curve = simulate_cache_curve(pairs, sizes=(1, 2, 1000, 4000))
        assert [size for size, _ in curve] == [1, 2, 3]

    def test_empty(self):
        assert simulate_cache_curve([]) == []


class TestExactQuantile:
    def test_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert exact_quantile(values, 0.0) == 1.0
        assert exact_quantile(values, 1.0) == 4.0
        assert exact_quantile(values, 0.5) == pytest.approx(2.5)

    def test_empty_is_nan(self):
        assert math.isnan(exact_quantile([], 0.5))


class TestCharacterize:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            characterize([])

    def test_report_contents(self):
        records = (
            [record(0, 1, latency=10.0, hit=True)] * 6
            + [record(0, 2, latency=20.0)] * 3
            + [record(3, 4, latency=100.0, op="batch", outcome="unreachable")]
        )
        report = characterize(records, top=2)
        assert report["schema"] == WORKLOAD_SCHEMA
        assert report["records"] == 10
        assert report["ops"] == {"batch": 1, "distance": 9}
        assert report["outcomes"] == {"ok": 9, "unreachable": 1}
        assert report["unique_pairs"] == 3
        assert report["unique_vertices"] == 5
        assert report["observed_cache_hit_rate"] == pytest.approx(0.6)
        assert report["hot_pairs"][0] == [0, 1, 6]
        assert report["hot_vertices"][0] == [0, 9]
        assert len(report["hot_pairs"]) == 2
        assert report["latency_us"]["max"] == 100.0
        assert report["latency_us"]["p50"] == pytest.approx(10.0)

    def test_symmetric_pairs_merge(self):
        report = characterize([record(1, 5), record(5, 1)])
        assert report["unique_pairs"] == 1
        assert report["hot_pairs"] == [[1, 5, 2]]

    def test_cache_curve_in_report(self):
        records = [record(0, 1)] * 4 + [record(0, 2)] * 2
        report = characterize(records, cache_sizes=(1,))
        curve = dict(
            (size, rate) for size, rate in report["cache_curve"]
        )
        assert set(curve) == {1, 2}
        assert curve[2] == pytest.approx(4 / 6)

    def test_render(self):
        records = [record(0, 1)] * 3 + [record(2, 3)]
        text = render_workload(characterize(records))
        assert "workload: 4 records" in text
        assert "zipf fit" in text
        assert "cache curve" in text
        assert "hot pairs" in text


class TestEndToEnd:
    def test_capture_then_characterize(self):
        from repro.generators.random_graphs import gnm_random_graph

        index = PLLIndex.build(gnm_random_graph(30, 70, seed=3))
        oracle = DistanceOracle(index)
        with recording(QueryLogRecorder(sample=1.0)) as rec:
            for _ in range(3):
                oracle.distance(0, 5)
            oracle.batch([(1, 2), (3, 4)])
        report = characterize(rec.snapshot())
        assert report["records"] == 5
        assert report["ops"] == {"batch": 2, "distance": 3}
        # Two of the three repeats of (0, 5) hit the LRU.
        assert report["observed_cache_hit_rate"] == pytest.approx(0.4)
        assert report["hot_pairs"][0][:2] == [0, 5]
