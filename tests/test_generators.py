"""Tests for the synthetic graph generators and the dataset registry."""

import numpy as np
import pytest

from repro.generators.asnet import as_topology
from repro.generators.paper import DATASETS, dataset_names, load_dataset
from repro.generators.powerlaw import barabasi_albert, chung_lu, powerlaw_degrees
from repro.generators.random_graphs import gnm_random_graph, gnp_random_graph
from repro.generators.road import grid_road_network
from repro.generators.social import community_graph, watts_strogatz
from repro.generators.weights import WEIGHT_DISTRIBUTIONS, make_weight_sampler
from repro.graph.validate import check_graph


ALL_GENERATORS = [
    ("gnm", lambda seed: gnm_random_graph(60, 150, seed=seed)),
    ("gnp", lambda seed: gnp_random_graph(60, 0.08, seed=seed)),
    ("ba", lambda seed: barabasi_albert(60, 3, seed=seed)),
    (
        "chung_lu",
        lambda seed: chung_lu(
            powerlaw_degrees(60, 2.2, 2, 12, seed=seed), seed=seed
        ),
    ),
    ("road", lambda seed: grid_road_network(8, 8, seed=seed)),
    ("ws", lambda seed: watts_strogatz(60, 4, 0.1, seed=seed)),
    (
        "community",
        lambda seed: community_graph(4, 15, 0.4, 0.01, seed=seed),
    ),
    ("as", lambda seed: as_topology(80, seed=seed)),
]


@pytest.mark.parametrize("name,make", ALL_GENERATORS, ids=[n for n, _ in ALL_GENERATORS])
class TestAllGenerators:
    def test_structurally_valid(self, name, make):
        g = make(0)
        check_graph(g)

    def test_connected(self, name, make):
        assert make(1).is_connected()

    def test_positive_weights(self, name, make):
        g = make(2)
        assert np.all(g.weights > 0)

    def test_deterministic(self, name, make):
        assert make(3) == make(3)

    def test_seed_matters(self, name, make):
        assert make(4) != make(5)


class TestWeights:
    def test_registry_names(self):
        for name in WEIGHT_DISTRIBUTIONS:
            sampler = make_weight_sampler(name)
            w = sampler(np.random.default_rng(0), 100)
            assert len(w) == 100
            assert np.all(w > 0)
            assert np.all(np.isfinite(w))

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown weight"):
            make_weight_sampler("gaussian")

    def test_unit_weights(self):
        w = make_weight_sampler("unit")(np.random.default_rng(0), 5)
        assert w.tolist() == [1.0] * 5

    def test_uniform_int_range(self):
        w = make_weight_sampler("uniform-int")(np.random.default_rng(0), 500)
        assert w.min() >= 1 and w.max() <= 10
        assert np.all(w == np.round(w))


class TestPowerlaw:
    def test_degree_sequence_range(self):
        deg = powerlaw_degrees(200, 2.5, 2, 20, seed=0)
        assert deg.min() >= 2 and deg.max() <= 20

    def test_degree_sequence_skewed(self):
        deg = powerlaw_degrees(2000, 2.1, 1, 100, seed=0)
        assert np.median(deg) < deg.mean() < deg.max()

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            powerlaw_degrees(10, 0.5, 1, 5)

    def test_invalid_degree_bounds(self):
        with pytest.raises(ValueError):
            powerlaw_degrees(10, 2.0, 5, 2)

    def test_ba_edge_count(self):
        g = barabasi_albert(100, 3, seed=0)
        # m ~ m_attach * (n - m_attach); LCC extraction may trim a little.
        assert g.num_edges >= 2.5 * 90

    def test_ba_has_hubs(self):
        g = barabasi_albert(300, 2, seed=0)
        assert g.degrees.max() > 5 * g.degrees.mean()

    def test_ba_invalid_params(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert(3, 5)

    def test_chung_lu_negative_degree(self):
        with pytest.raises(ValueError):
            chung_lu(np.array([-1.0, 2.0]))


class TestRoad:
    def test_low_degree(self):
        g = grid_road_network(15, 15, seed=0)
        assert g.degrees.max() <= 8

    def test_param_validation(self):
        with pytest.raises(ValueError):
            grid_road_network(0, 5)
        with pytest.raises(ValueError):
            grid_road_network(5, 5, removal_prob=1.5)

    def test_keeps_most_of_grid(self):
        g = grid_road_network(20, 20, removal_prob=0.1, seed=1)
        assert g.num_vertices > 320  # >80% of 400


class TestSocial:
    def test_ws_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz(2, 2, 0.1)
        with pytest.raises(ValueError):
            watts_strogatz(10, 12, 0.1)
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, 1.5)

    def test_community_denser_inside(self):
        g = community_graph(3, 30, 0.5, 0.001, seed=0)
        inside = outside = 0
        for u, v, _w in g.edges():
            if u // 30 == v // 30:
                inside += 1
            else:
                outside += 1
        assert inside > outside

    def test_community_validation(self):
        with pytest.raises(ValueError):
            community_graph(0, 5, 0.5, 0.1)
        with pytest.raises(ValueError):
            community_graph(2, 5, 1.5, 0.1)


class TestAsTopology:
    def test_validation(self):
        with pytest.raises(ValueError):
            as_topology(5)
        with pytest.raises(ValueError):
            as_topology(100, core_fraction=0.9, mid_fraction=0.2)

    def test_skewed_degrees(self):
        g = as_topology(400, seed=0)
        assert g.degrees.max() > 10 * np.median(g.degrees)


class TestDatasetRegistry:
    def test_eleven_datasets(self):
        assert len(dataset_names()) == 11
        assert dataset_names()[0] == "Wiki-Vote"
        assert dataset_names()[-1] == "Euall"

    @pytest.mark.parametrize("name", dataset_names())
    def test_each_loads_small(self, name):
        g = load_dataset(name, scale=0.25, seed=1)
        assert g.is_connected()
        assert g.name == name
        check_graph(g)

    def test_scale_changes_size(self):
        small = load_dataset("Gnutella", scale=0.25)
        big = load_dataset("Gnutella", scale=0.75)
        assert big.num_vertices > small.num_vertices

    def test_deterministic(self):
        assert load_dataset("CondMat", scale=0.25, seed=3) == load_dataset(
            "CondMat", scale=0.25, seed=3
        )

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("Facebook")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("Gnutella", scale=0.0)

    def test_specs_match_paper_table2(self):
        spec = DATASETS["Skitter"].spec
        assert spec.paper_n == 192_244
        assert spec.paper_m == 1_218_132
        assert spec.graph_type == "Autonomous Systems"

    def test_road_family_low_degree(self):
        g = load_dataset("DE-USA", scale=0.3)
        assert g.degrees.max() <= 8

    def test_social_family_skewed_degrees(self):
        g = load_dataset("Epinions", scale=0.3)
        assert g.degrees.max() > 5 * np.median(g.degrees)
