"""Tests for the baseline shortest-path algorithms.

Dijkstra and Floyd–Warshall are independent implementations; they check
each other, and everything else checks against them.
"""

import math

import numpy as np
import pytest

from repro.baselines.apsp import APSPIndex, floyd_warshall
from repro.baselines.bfs import bfs_distances, bfs_pair
from repro.baselines.bidirectional import bidirectional_dijkstra
from repro.baselines.dijkstra import (
    dijkstra_pair,
    dijkstra_sssp,
    reconstruct_path,
    shortest_path_tree,
)
from repro.errors import GraphError, NotIndexedError
from repro.pq import PQ_IMPLEMENTATIONS

from .conftest import build_graph

INF = math.inf


class TestDijkstraSSSP:
    def test_path_graph(self, path_graph):
        assert dijkstra_sssp(path_graph, 0) == [0.0, 1.0, 3.0, 6.0]

    def test_triangle_detour(self, triangle):
        # Direct 0-2 costs 5; via 1 costs 2.
        assert dijkstra_sssp(triangle, 0)[2] == 2.0

    def test_unreachable(self, two_components):
        dist = dijkstra_sssp(two_components, 0)
        assert dist[1] == 1.0
        assert dist[2] == INF
        assert dist[4] == INF

    def test_source_is_zero(self, random_graph):
        assert dijkstra_sssp(random_graph, 5)[5] == 0.0

    def test_symmetric(self, random_graph):
        d0 = dijkstra_sssp(random_graph, 0)
        for t in range(random_graph.num_vertices):
            assert dijkstra_sssp(random_graph, t)[0] == d0[t]

    def test_invalid_source(self, path_graph):
        with pytest.raises(GraphError):
            dijkstra_sssp(path_graph, 100)

    @pytest.mark.parametrize("pq_name", list(PQ_IMPLEMENTATIONS))
    def test_all_priority_queues_agree(self, random_graph, pq_name):
        base = dijkstra_sssp(random_graph, 3)
        got = dijkstra_sssp(
            random_graph, 3, pq_factory=PQ_IMPLEMENTATIONS[pq_name]
        )
        assert got == base

    def test_matches_floyd_warshall(self, random_graph):
        table = floyd_warshall(random_graph)
        for s in range(0, random_graph.num_vertices, 7):
            dist = dijkstra_sssp(random_graph, s)
            assert np.allclose(dist, table[s], equal_nan=False)


class TestDijkstraPair:
    def test_same_vertex(self, path_graph):
        assert dijkstra_pair(path_graph, 2, 2) == 0.0

    def test_matches_sssp(self, random_graph):
        dist = dijkstra_sssp(random_graph, 0)
        for t in range(random_graph.num_vertices):
            assert dijkstra_pair(random_graph, 0, t) == dist[t]

    def test_unreachable(self, two_components):
        assert dijkstra_pair(two_components, 0, 3) == INF

    def test_invalid_target(self, path_graph):
        with pytest.raises(GraphError):
            dijkstra_pair(path_graph, 0, -1)


class TestShortestPathTree:
    def test_parents_consistent(self, random_graph):
        dist, parent = shortest_path_tree(random_graph, 0)
        for v in range(random_graph.num_vertices):
            p = parent[v]
            if p >= 0:
                w = random_graph.edge_weight(p, v)
                assert dist[v] == pytest.approx(dist[p] + w)

    def test_reconstruct_path(self, path_graph):
        _dist, parent = shortest_path_tree(path_graph, 0)
        assert reconstruct_path(parent, 3) == [0, 1, 2, 3]

    def test_reconstruct_source(self, path_graph):
        _dist, parent = shortest_path_tree(path_graph, 0)
        assert reconstruct_path(parent, 0) == [0]


class TestBidirectional:
    def test_matches_dijkstra(self, random_graph):
        for s in (0, 7, 13):
            truth = dijkstra_sssp(random_graph, s)
            for t in range(0, random_graph.num_vertices, 3):
                assert bidirectional_dijkstra(random_graph, s, t) == truth[t]

    def test_same_vertex(self, random_graph):
        assert bidirectional_dijkstra(random_graph, 4, 4) == 0.0

    def test_unreachable(self, two_components):
        assert bidirectional_dijkstra(two_components, 0, 2) == INF

    def test_path_graph_end_to_end(self, path_graph):
        assert bidirectional_dijkstra(path_graph, 0, 3) == 6.0

    def test_triangle(self, triangle):
        assert bidirectional_dijkstra(triangle, 0, 2) == 2.0


class TestBFS:
    def test_hops_ignore_weights(self, path_graph):
        assert bfs_distances(path_graph, 0) == [0.0, 1.0, 2.0, 3.0]

    def test_matches_dijkstra_on_unit_graph(self, random_graph):
        unit = random_graph.unit_weighted()
        for s in (0, 9):
            assert bfs_distances(unit, s) == dijkstra_sssp(unit, s)

    def test_pair_early_exit(self, path_graph):
        assert bfs_pair(path_graph, 0, 3) == 3.0
        assert bfs_pair(path_graph, 1, 1) == 0.0

    def test_pair_unreachable(self, two_components):
        assert bfs_pair(two_components, 0, 4) == INF


class TestFloydWarshall:
    def test_triangle(self, triangle):
        table = floyd_warshall(triangle)
        assert table[0, 2] == 2.0
        assert table[2, 0] == 2.0

    def test_diagonal_zero(self, random_graph):
        table = floyd_warshall(random_graph)
        assert np.all(np.diag(table) == 0.0)

    def test_symmetric(self, random_graph):
        table = floyd_warshall(random_graph)
        assert np.allclose(table, table.T)

    def test_disconnected_inf(self, two_components):
        table = floyd_warshall(two_components)
        assert table[0, 2] == INF


class TestAPSPIndex:
    def test_query_before_build(self, path_graph):
        idx = APSPIndex(path_graph)
        with pytest.raises(NotIndexedError):
            idx.query(0, 1)
        with pytest.raises(NotIndexedError):
            idx.stats  # noqa: B018 - property access is the test

    def test_dijkstra_method(self, random_graph):
        idx = APSPIndex(random_graph)
        stats = idx.build()
        assert stats.n == random_graph.num_vertices
        truth = dijkstra_sssp(random_graph, 2)
        for t in range(random_graph.num_vertices):
            assert idx.query(2, t) == truth[t]

    def test_floyd_warshall_method(self, triangle):
        idx = APSPIndex(triangle, method="floyd-warshall")
        idx.build()
        assert idx.query(0, 2) == 2.0

    def test_methods_agree(self, random_graph):
        a = APSPIndex(random_graph, method="dijkstra")
        b = APSPIndex(random_graph, method="floyd-warshall")
        a.build()
        b.build()
        assert np.allclose(a.distance_matrix(), b.distance_matrix())

    def test_unknown_method(self, path_graph):
        with pytest.raises(ValueError):
            APSPIndex(path_graph, method="bogus")

    def test_distance_matrix_readonly(self, triangle):
        idx = APSPIndex(triangle)
        idx.build()
        with pytest.raises(ValueError):
            idx.distance_matrix()[0, 0] = 1.0
