"""Tests for Algorithm 1 (the pruned Dijkstra engine)."""

import pytest

from repro.core.labels import LabelStore
from repro.core.pruned_dijkstra import PrunedDijkstra
from repro.baselines.dijkstra import dijkstra_sssp
from repro.errors import GraphError, OrderingError
from repro.graph.order import by_degree
from repro.pq import PQ_IMPLEMENTATIONS
from repro.types import SearchStats

from .conftest import build_graph


def make_engine(graph, order=None):
    return PrunedDijkstra(graph, order if order is not None else by_degree(graph))


class TestFirstRoot:
    def test_unpruned_full_dijkstra(self, random_graph):
        """With no labels yet, the search is a plain Dijkstra."""
        engine = make_engine(random_graph)
        store = LabelStore(random_graph.num_vertices)
        root = int(engine.order[0])
        delta = engine.run(root, store)
        truth = dijkstra_sssp(random_graph, root)
        assert dict(delta) == {
            v: d for v, d in enumerate(truth) if d != float("inf")
        }

    def test_root_first_in_delta(self, random_graph):
        engine = make_engine(random_graph)
        store = LabelStore(random_graph.num_vertices)
        delta = engine.run(3, store)
        assert delta[0] == (3, 0.0)


class TestPruning:
    def test_second_root_pruned_on_path(self, path_graph):
        """After indexing the centre of a path, endpoints prune hard."""
        order = [1, 0, 2, 3]
        engine = make_engine(path_graph, order)
        store = LabelStore(4)
        d1 = engine.run(1, store)
        engine.commit(1, d1, store)
        stats = SearchStats()
        d0 = engine.run(0, store, stats)
        # Vertex 0's search: everything beyond is covered via hub 1.
        assert [v for v, _ in d0] == [0]
        assert stats.pruned > 0

    def test_prunes_with_equal_distance(self):
        """The paper prunes on <=: an equal 2-hop path suppresses labels."""
        g = build_graph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)])
        order = [1, 0, 2]
        engine = make_engine(g, order)
        store = LabelStore(3)
        engine.commit(1, engine.run(1, store), store)
        d0 = engine.run(0, store)
        # d(0,2) = 2 both directly and via hub 1 -> pruned.
        assert (2, 2.0) not in d0

    def test_deltas_are_exact_distances(self, random_graph):
        """Every label entry is the true distance (even when pruned late)."""
        engine = make_engine(random_graph)
        store = LabelStore(random_graph.num_vertices)
        for root in engine.order:
            delta = engine.run(int(root), store)
            truth = dijkstra_sssp(random_graph, int(root))
            for v, d in delta:
                assert d == truth[v]
            engine.commit(int(root), delta, store)

    def test_later_roots_add_fewer_labels(self, medium_graph):
        engine = make_engine(medium_graph)
        store = LabelStore(medium_graph.num_vertices)
        counts = []
        for root in engine.order:
            delta = engine.run(int(root), store)
            engine.commit(int(root), delta, store)
            counts.append(len(delta))
        # The first root labels everything reachable; the last nearly nothing.
        assert counts[0] > counts[-1]
        assert counts[-1] <= 3


class TestStats:
    def test_counters_filled(self, random_graph):
        engine = make_engine(random_graph)
        store = LabelStore(random_graph.num_vertices)
        stats = SearchStats()
        delta = engine.run(0, store, stats)
        assert stats.root == 0
        assert stats.labels_added == len(delta)
        assert stats.settled >= len(delta)
        assert stats.heap_pops >= stats.settled
        assert stats.relaxations > 0

    def test_pruned_counted(self, path_graph):
        engine = make_engine(path_graph, [1, 0, 2, 3])
        store = LabelStore(4)
        engine.commit(1, engine.run(1, store), store)
        stats = SearchStats()
        engine.run(0, store, stats)
        assert stats.pruned >= 1
        assert stats.settled == stats.pruned + stats.labels_added


class TestGenericPQ:
    @pytest.mark.parametrize("pq_name", list(PQ_IMPLEMENTATIONS))
    def test_matches_fast_path(self, random_graph, pq_name):
        order = by_degree(random_graph)
        fast = PrunedDijkstra(random_graph, order)
        slow = PrunedDijkstra(
            random_graph, order, pq_factory=PQ_IMPLEMENTATIONS[pq_name]
        )
        store_f = LabelStore(random_graph.num_vertices)
        store_s = LabelStore(random_graph.num_vertices)
        for root in order:
            df = fast.run(int(root), store_f)
            ds = slow.run(int(root), store_s)
            assert sorted(df) == sorted(ds)
            fast.commit(int(root), df, store_f)
            slow.commit(int(root), ds, store_s)


class TestValidation:
    def test_invalid_root(self, path_graph):
        engine = make_engine(path_graph)
        with pytest.raises(GraphError):
            engine.run(99, LabelStore(4))

    def test_invalid_ordering(self, path_graph):
        with pytest.raises(OrderingError):
            PrunedDijkstra(path_graph, [0, 1])

    def test_rank_of(self, path_graph):
        engine = make_engine(path_graph, [2, 0, 3, 1])
        assert engine.rank_of(2) == 0
        assert engine.rank_of(1) == 3
        with pytest.raises(OrderingError):
            engine.rank_of(99)

    def test_scratch_arrays_reset(self, random_graph):
        """Back-to-back runs must not leak state between roots."""
        engine = make_engine(random_graph)
        store = LabelStore(random_graph.num_vertices)
        d_a1 = engine.run(0, store)
        d_b = engine.run(1, store)
        d_a2 = engine.run(0, store)
        assert d_a1 == d_a2
        assert d_b == engine.run(1, store)
