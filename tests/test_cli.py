"""End-to-end tests for the ``parapll`` command-line tool."""

import pytest

from repro.cli import main
from repro.core.index import PLLIndex
from repro.io.npz import load_graph_npz, save_graph_npz
from repro.generators.random_graphs import gnm_random_graph


@pytest.fixture
def graph_file(tmp_path):
    g = gnm_random_graph(30, 70, seed=2)
    path = tmp_path / "g.npz"
    save_graph_npz(g, path)
    return str(path)


class TestGenerate:
    def test_generates_npz(self, tmp_path, capsys):
        out = tmp_path / "w.npz"
        code = main(
            [
                "generate",
                "--dataset",
                "Wiki-Vote",
                "--scale",
                "0.2",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        g = load_graph_npz(out)
        assert g.name == "Wiki-Vote"
        assert "wrote" in capsys.readouterr().out


class TestIndex:
    def test_serial_index(self, graph_file, tmp_path, capsys):
        out = tmp_path / "i.npz"
        code = main(["index", "--graph", graph_file, "--out", str(out)])
        assert code == 0
        idx = PLLIndex.load(out)
        assert idx.num_vertices == load_graph_npz(graph_file).num_vertices
        assert "indexed" in capsys.readouterr().out

    def test_threaded_index(self, graph_file, tmp_path):
        out = tmp_path / "i.npz"
        code = main(
            [
                "index",
                "--graph",
                graph_file,
                "--threads",
                "3",
                "--policy",
                "static",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        idx = PLLIndex.load(out, graph=load_graph_npz(graph_file))
        idx.verify_against_dijkstra([0, 5])

    def test_default_output_name(self, graph_file, tmp_path):
        code = main(["index", "--graph", graph_file])
        assert code == 0
        assert (tmp_path / "g.index.npz").exists()

    def test_bfs_engine(self, graph_file, tmp_path):
        from repro.baselines.bfs import bfs_distances

        out = tmp_path / "b.npz"
        code = main(
            ["index", "--graph", graph_file, "--engine", "bfs",
             "--out", str(out)]
        )
        assert code == 0
        g = load_graph_npz(graph_file)
        idx = PLLIndex.load(out)
        truth = bfs_distances(g, 0)
        for t in range(g.num_vertices):
            assert idx.distance(0, t) == truth[t]

    def test_bfs_engine_threaded(self, graph_file, tmp_path):
        from repro.baselines.bfs import bfs_distances

        out = tmp_path / "bt.npz"
        code = main(
            ["index", "--graph", graph_file, "--engine", "bfs",
             "--threads", "3", "--out", str(out)]
        )
        assert code == 0
        g = load_graph_npz(graph_file)
        idx = PLLIndex.load(out)
        truth = bfs_distances(g, 2)
        for t in range(g.num_vertices):
            assert idx.distance(2, t) == truth[t]


class TestQuery:
    def test_query_roundtrip(self, graph_file, tmp_path, capsys):
        idx_file = tmp_path / "i.npz"
        main(["index", "--graph", graph_file, "--out", str(idx_file)])
        capsys.readouterr()
        code = main(["query", "--index", str(idx_file), "0", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "distance(0, 7)" in out

    def test_query_self(self, graph_file, tmp_path, capsys):
        idx_file = tmp_path / "i.npz"
        main(["index", "--graph", graph_file, "--out", str(idx_file)])
        capsys.readouterr()
        main(["query", "--index", str(idx_file), "4", "4"])
        assert "= 0.0" in capsys.readouterr().out


class TestStats:
    def test_stats_output(self, graph_file, tmp_path, capsys):
        idx_file = tmp_path / "i.npz"
        main(["index", "--graph", graph_file, "--out", str(idx_file)])
        capsys.readouterr()
        code = main(["stats", "--index", str(idx_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "vertices:" in out
        assert "label size mean" in out


class TestErrors:
    def test_missing_file(self, capsys):
        code = main(["index", "--graph", "/nonexistent/g.npz"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_query_vertex(self, graph_file, tmp_path, capsys):
        idx_file = tmp_path / "i.npz"
        main(["index", "--graph", graph_file, "--out", str(idx_file)])
        code = main(["query", "--index", str(idx_file), "0", "999"])
        assert code == 1


class TestBenchPassthrough:
    def test_bench_subcommand(self, capsys):
        code = main(
            [
                "bench",
                "--experiment",
                "datasets",
                "--scale",
                "0.15",
                "--datasets",
                "Gnutella",
            ]
        )
        assert code == 0
        assert "Gnutella" in capsys.readouterr().out


class TestObs:
    def test_summary_and_exports(self, graph_file, tmp_path, capsys):
        import json

        prom = tmp_path / "m.prom"
        jsonl = tmp_path / "t.jsonl"
        code = main(
            [
                "obs",
                "--graph",
                graph_file,
                "--threads",
                "2",
                "--prom",
                str(prom),
                "--jsonl",
                str(jsonl),
            ]
        )
        assert code == 0
        n = load_graph_npz(graph_file).num_vertices
        out = capsys.readouterr().out
        assert "observability summary" in out
        assert f"roots searched     {n}" in out
        assert "workers:" in out
        assert f"parapll_build_roots_total {n}" in prom.read_text()
        with open(jsonl) as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        assert any(r["name"] == "root_search" for r in records)
        # --jsonl implies tracing for the build only; it is off again.
        from repro.obs import config as obs_config

        assert obs_config.TRACING is False

    def test_dataset_source_serial(self, capsys):
        code = main(
            ["obs", "--dataset", "Gnutella", "--scale", "0.1", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built Gnutella" in out
        assert "prune rate" in out


class TestPerf:
    def _run(self, tmp_path, tag="a", repeats="1"):
        out = tmp_path / f"BENCH_{tag}.json"
        code = main(
            [
                "perf", "run",
                "--tag", tag,
                "--repeats", repeats,
                "--scale", "0.25",
                "--out", str(out),
            ]
        )
        assert code == 0
        return out

    def test_run_writes_schema_versioned_bench(self, tmp_path, capsys):
        import json

        out = self._run(tmp_path)
        doc = json.loads(out.read_text())
        assert doc["schema"] == "parapll-bench/1"
        assert "environment" in doc and "workloads" in doc
        stdout = capsys.readouterr().out
        assert "serial_build" in stdout

    def test_compare_self_passes(self, tmp_path, capsys):
        out = self._run(tmp_path)
        code = main(["perf", "compare", str(out), str(out)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare_regression_nonzero_exit(self, tmp_path, capsys):
        import json

        out = self._run(tmp_path)
        doc = json.loads(out.read_text())
        doc["workloads"]["serial_build"]["metrics"]["labels"]["median"] *= 2
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps(doc))
        code = main(["perf", "compare", str(out), str(bad)])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_update_baseline_and_report(self, tmp_path, capsys):
        baseline = tmp_path / "bench" / "baseline.json"
        code = main(
            [
                "perf", "update-baseline",
                "--repeats", "1",
                "--scale", "0.25",
                "--baseline", str(baseline),
            ]
        )
        assert code == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["perf", "report", str(baseline)]) == 0
        assert "benchmark baseline" in capsys.readouterr().out

    def test_compare_missing_file_errors(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        code = main(["perf", "compare", missing, missing])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestTimeline:
    def test_sim_timeline_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        code = main(
            [
                "timeline",
                "--dataset", "Gnutella",
                "--scale", "0.25",
                "--sim",
                "--out", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events
        for event in events:
            for key in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert key in event
        stdout = capsys.readouterr().out
        assert "critical path" in stdout
        assert "worker 0" in stdout

    def test_threaded_timeline(self, graph_file, capsys):
        code = main(["timeline", "--graph", graph_file, "--threads", "2"])
        assert code == 0
        assert "critical path" in capsys.readouterr().out

    def test_from_jsonl_round_trip(self, tmp_path, capsys):
        jsonl = tmp_path / "t.jsonl"
        code = main(
            [
                "obs",
                "--dataset", "Gnutella",
                "--scale", "0.25",
                "--threads", "2",
                "--jsonl", str(jsonl),
            ]
        )
        assert code == 0
        capsys.readouterr()
        out = tmp_path / "converted.json"
        code = main(
            ["timeline", "--from-jsonl", str(jsonl), "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "critical path" in capsys.readouterr().out

    def test_tracing_restored_after_timeline(self):
        from repro.obs import config as obs_config

        main(["timeline", "--dataset", "Gnutella", "--scale", "0.1", "--sim"])
        assert obs_config.TRACING is False


@pytest.fixture
def index_file(graph_file, tmp_path):
    idx = PLLIndex.build(load_graph_npz(graph_file))
    path = tmp_path / "i.npz"
    idx.save(path)
    return str(path)


class TestExplain:
    def test_text_output(self, index_file, capsys):
        code = main(["explain", "--index", index_file, "3", "17"])
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN distance(3, 17)" in out
        assert "labels:" in out

    def test_json_output_matches_query(self, graph_file, index_file, capsys):
        import json
        import math

        code = main(["explain", "--index", index_file, "--json", "3", "17"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "parapll-explain/1"
        index = PLLIndex.load(index_file)
        expected = index.distance(3, 17)
        got = math.inf if doc["distance"] == "inf" else doc["distance"]
        assert got == expected

    def test_trivial_pair(self, index_file, capsys):
        code = main(["explain", "--index", index_file, "4", "4"])
        assert code == 0
        assert "trivial" in capsys.readouterr().out


class TestServe:
    def test_serve_for_duration(self, index_file, capsys):
        code = main(
            [
                "serve",
                "--index", index_file,
                "--port", "0",
                "--duration", "0.0",
            ]
        )
        assert code == 0
        assert "serving" in capsys.readouterr().out

    def test_serve_needs_a_source(self, capsys):
        code = main(["serve", "--port", "0"])
        assert code != 0
        assert "needs --index" in capsys.readouterr().err


class TestFlightrecDump:
    def test_local_dump_after_build(self, graph_file, tmp_path, capsys):
        import json

        out = tmp_path / "flight.jsonl"
        code = main(
            [
                "flightrec", "dump",
                "--graph", graph_file,
                "--threads", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert "dumped" in capsys.readouterr().out
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == "parapll-flightrec/1"
        assert header["events"] == len(lines) - 1
        kinds = {json.loads(x)["kind"] for x in lines[1:]}
        assert "task_grab" in kinds and "label_commit" in kinds

    def test_remote_dump_from_live_server(self, index_file, tmp_path, capsys):
        import json

        from repro.obs import flightrec
        from repro.service.oracle import DistanceOracle
        from repro.service.server import DistanceServer

        flightrec.get_recorder().clear()
        flightrec.record("cli_marker", n=1)
        oracle = DistanceOracle(PLLIndex.load(index_file))
        out = tmp_path / "remote.jsonl"
        with DistanceServer(oracle) as server:
            code = main(
                [
                    "flightrec", "dump",
                    "--port", str(server.port),
                    "--out", str(out),
                ]
            )
        assert code == 0
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["reason"] == "remote-debug"
        kinds = [json.loads(x)["kind"] for x in lines[1:]]
        assert "cli_marker" in kinds
        flightrec.get_recorder().clear()


class TestTop:
    def test_single_frame(self, index_file, capsys):
        from repro.service.oracle import DistanceOracle
        from repro.service.server import DistanceServer

        oracle = DistanceOracle(PLLIndex.load(index_file))
        with DistanceServer(oracle) as server:
            code = main(
                [
                    "top",
                    "--port", str(server.port),
                    "--iterations", "1",
                    "--no-clear",
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "parapll top" in out
        assert "uptime" in out
        assert "in-flight" in out
        # --no-clear must not emit terminal escape codes.
        assert "\x1b[2J" not in out
