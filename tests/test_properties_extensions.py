"""Property-based tests for the extension subsystems.

Random graphs + random mutations, each checked against an independent
ground truth: directed PLL vs. directed Dijkstra, dynamic insertions
vs. rebuilt-from-scratch, CH vs. Dijkstra, kNN vs. sorted scan.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ch import ContractionHierarchy
from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.dynamic import DynamicPLL
from repro.core.index import PLLIndex
from repro.core.knn import KNNIndex
from repro.digraph import DiGraphBuilder, DirectedPLLIndex, dijkstra_forward
from repro.errors import GraphError
from repro.graph.builder import GraphBuilder


@st.composite
def small_graph(draw, max_n=12, max_m=26):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    b = GraphBuilder(num_vertices=n)
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        w = draw(st.floats(0.5, 20.0, allow_nan=False))
        if u != v:
            b.add_edge(u, v, w)
    return b.build()


@st.composite
def small_digraph(draw, max_n=10, max_m=24):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    b = DiGraphBuilder(num_vertices=n)
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        w = draw(st.floats(0.5, 20.0, allow_nan=False))
        if u != v:
            b.add_arc(u, v, w)
    return b.build()


@given(small_digraph())
@settings(max_examples=40, deadline=None)
def test_directed_pll_equals_directed_dijkstra(digraph):
    idx = DirectedPLLIndex(digraph)
    idx.build()
    for s in range(digraph.num_vertices):
        truth = dijkstra_forward(digraph, s)
        for t in range(digraph.num_vertices):
            got = idx.distance(s, t)
            assert got == truth[t] or math.isclose(got, truth[t])


@given(
    small_graph(),
    st.lists(
        st.tuples(
            st.integers(0, 11),
            st.integers(0, 11),
            st.floats(0.5, 10.0, allow_nan=False),
        ),
        max_size=5,
    ),
)
@settings(max_examples=30, deadline=None)
def test_dynamic_insertions_stay_exact(graph, inserts):
    dyn = DynamicPLL(PLLIndex.build(graph))
    n = graph.num_vertices
    for a, b, w in inserts:
        if a >= n or b >= n:
            continue
        try:
            dyn.insert_edge(a, b, w)
        except GraphError:
            continue  # self loop or duplicate
    current = dyn.current_graph()
    for s in range(n):
        truth = dijkstra_sssp(current, s)
        for t in range(n):
            got = dyn.distance(s, t)
            assert got == truth[t] or math.isclose(got, truth[t])


@given(small_graph())
@settings(max_examples=30, deadline=None)
def test_contraction_hierarchy_equals_dijkstra(graph):
    ch = ContractionHierarchy(graph, witness_settle_limit=8)
    ch.build()
    for s in range(graph.num_vertices):
        truth = dijkstra_sssp(graph, s)
        for t in range(graph.num_vertices):
            got = ch.query(s, t)
            assert got == truth[t] or math.isclose(got, truth[t])


@given(small_graph(), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_knn_matches_sorted_scan(graph, k):
    index = PLLIndex.build(graph)
    knn = KNNIndex(index.store)
    truth = dijkstra_sssp(graph, 0)
    want = sorted(
        (d, v) for v, d in enumerate(truth) if v != 0 and d != math.inf
    )[:k]
    got = knn.k_nearest(0, k)
    assert len(got) == len(want)
    for (_v, d_got), (d_want, _v2) in zip(got, want):
        # Hub sums may differ from Dijkstra sums by float rounding only.
        assert d_got == d_want or math.isclose(d_got, d_want)
