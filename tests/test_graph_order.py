"""Tests for vertex orderings."""

import numpy as np
import pytest

from repro.errors import OrderingError
from repro.graph.order import (
    by_approx_betweenness,
    by_degree,
    by_random,
    by_weighted_degree,
    ordering_rank,
    validate_ordering,
)

from .conftest import build_graph


class TestDegreeOrder:
    def test_star_hub_first(self, star_graph):
        order = by_degree(star_graph)
        assert order[0] == 0

    def test_is_permutation(self, random_graph):
        order = by_degree(random_graph)
        assert sorted(order.tolist()) == list(
            range(random_graph.num_vertices)
        )

    def test_descending_degrees(self, random_graph):
        order = by_degree(random_graph)
        degs = random_graph.degrees[order]
        assert np.all(np.diff(degs) <= 0)

    def test_tie_break_by_id(self):
        g = build_graph([(0, 1, 1.0), (2, 3, 1.0)])
        order = by_degree(g)
        assert order.tolist() == [0, 1, 2, 3]


class TestWeightedDegreeOrder:
    def test_prefers_light_edges(self):
        # Vertex 0 has two heavy edges; vertex 3 has two light edges.
        g = build_graph(
            [(0, 1, 100.0), (0, 2, 100.0), (3, 4, 1.0), (3, 5, 1.0)]
        )
        order = by_weighted_degree(g)
        assert order[0] == 3

    def test_is_permutation(self, random_graph):
        order = by_weighted_degree(random_graph)
        assert sorted(order.tolist()) == list(
            range(random_graph.num_vertices)
        )


class TestRandomOrder:
    def test_deterministic_given_seed(self, random_graph):
        a = by_random(random_graph, seed=5)
        b = by_random(random_graph, seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_order(self, random_graph):
        a = by_random(random_graph, seed=1)
        b = by_random(random_graph, seed=2)
        assert not np.array_equal(a, b)

    def test_is_permutation(self, random_graph):
        order = by_random(random_graph, seed=0)
        assert sorted(order.tolist()) == list(
            range(random_graph.num_vertices)
        )


class TestBetweennessOrder:
    def test_path_center_first(self):
        # On a path, the middle vertex carries the most shortest paths.
        g = build_graph([(i, i + 1, 1.0) for i in range(6)])
        order = by_approx_betweenness(g, samples=7, seed=0)
        assert order[0] == 3

    def test_star_hub_first(self, star_graph):
        order = by_approx_betweenness(star_graph, samples=6, seed=0)
        assert order[0] == 0

    def test_is_permutation(self, random_graph):
        order = by_approx_betweenness(random_graph, samples=8, seed=0)
        assert sorted(order.tolist()) == list(
            range(random_graph.num_vertices)
        )

    def test_deterministic(self, random_graph):
        a = by_approx_betweenness(random_graph, samples=8, seed=3)
        b = by_approx_betweenness(random_graph, samples=8, seed=3)
        assert np.array_equal(a, b)

    def test_empty_graph(self):
        g = build_graph([], n=0)
        assert len(by_approx_betweenness(g)) == 0


class TestValidateAndRank:
    def test_validate_accepts_permutation(self, path_graph):
        out = validate_ordering(path_graph, [3, 1, 0, 2])
        assert out.tolist() == [3, 1, 0, 2]

    def test_validate_rejects_wrong_length(self, path_graph):
        with pytest.raises(OrderingError):
            validate_ordering(path_graph, [0, 1])

    def test_validate_rejects_duplicates(self, path_graph):
        with pytest.raises(OrderingError):
            validate_ordering(path_graph, [0, 0, 1, 2])

    def test_rank_inverts_order(self):
        order = np.array([2, 0, 3, 1])
        rank = ordering_rank(order)
        assert rank.tolist() == [1, 3, 0, 2]
        for pos, v in enumerate(order):
            assert rank[v] == pos
