"""Tests for the task manager's assignment policies."""

import threading

import pytest

from repro.errors import TaskError
from repro.parallel.task_manager import (
    DynamicAssignment,
    StaticAssignment,
    make_assignment,
)


class TestStatic:
    def test_round_robin_deal(self):
        a = StaticAssignment([10, 11, 12, 13, 14, 15, 16], 3)
        assert a.assigned_to(0) == [10, 13, 16]
        assert a.assigned_to(1) == [11, 14]
        assert a.assigned_to(2) == [12, 15]

    def test_next_task_sequence(self):
        a = StaticAssignment([1, 2, 3, 4], 2)
        assert a.next_task(0) == 1
        assert a.next_task(0) == 3
        assert a.next_task(0) is None
        assert a.next_task(1) == 2
        assert a.next_task(1) == 4
        assert a.next_task(1) is None

    def test_remaining(self):
        a = StaticAssignment([1, 2, 3], 2)
        assert a.remaining() == 3
        a.next_task(0)
        assert a.remaining() == 2

    def test_single_worker_is_serial(self):
        order = [5, 3, 1, 2]
        a = StaticAssignment(order, 1)
        got = [a.next_task(0) for _ in range(4)]
        assert got == order

    def test_worker_out_of_range(self):
        a = StaticAssignment([1], 2)
        with pytest.raises(TaskError):
            a.next_task(5)
        with pytest.raises(TaskError):
            a.assigned_to(-1)

    def test_zero_workers_rejected(self):
        with pytest.raises(TaskError):
            StaticAssignment([1], 0)

    def test_more_workers_than_tasks(self):
        a = StaticAssignment([1, 2], 5)
        assert a.next_task(0) == 1
        assert a.next_task(1) == 2
        assert a.next_task(2) is None


class TestDynamic:
    def test_fifo_by_request_order(self):
        a = DynamicAssignment([9, 8, 7], 3)
        assert a.next_task(2) == 9  # whoever asks first gets the head
        assert a.next_task(0) == 8
        assert a.next_task(1) == 7
        assert a.next_task(0) is None

    def test_remaining(self):
        a = DynamicAssignment([1, 2, 3], 2)
        assert a.remaining() == 3
        a.next_task(0)
        assert a.remaining() == 2

    def test_chunked_grabs(self):
        a = DynamicAssignment(list(range(6)), 2, chunk=3)
        # Worker 0 takes 0 and buffers 1,2 — which still count as
        # remaining (unprocessed) work.
        assert a.next_task(0) == 0
        assert a.remaining() == 5
        assert a.next_task(1) == 3
        assert a.next_task(0) == 1
        assert a.next_task(0) == 2
        assert a.next_task(0) == 5 or a.next_task(0) in (None,)

    def test_invalid_chunk(self):
        with pytest.raises(TaskError):
            DynamicAssignment([1], 1, chunk=0)

    def test_zero_workers_rejected(self):
        with pytest.raises(TaskError):
            DynamicAssignment([1], 0)

    def test_exhaustion(self):
        a = DynamicAssignment([1], 4)
        assert a.next_task(3) == 1
        for w in range(4):
            assert a.next_task(w) is None

    def test_thread_safety_no_duplicates(self):
        """Hammer the queue from real threads: each task handed out once."""
        order = list(range(500))
        a = DynamicAssignment(order, 8)
        got = [[] for _ in range(8)]

        def worker(k):
            while True:
                task = a.next_task(k)
                if task is None:
                    return
                got[k].append(task)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = [x for lst in got for x in lst]
        assert sorted(flat) == order


class TestDynamicEdgeCases:
    def test_chunk_larger_than_remaining(self):
        """A grab near the end takes whatever is left, never overshoots."""
        a = DynamicAssignment([1, 2, 3], 2, chunk=10)
        assert a.next_task(0) == 1
        # The tail moved to 0's buffer but is still unprocessed work.
        assert a.remaining() == 2
        assert a.next_task(1) is None
        assert a.next_task(0) == 2
        assert a.next_task(0) == 3
        assert a.next_task(0) is None
        assert a.remaining() == 0

    def test_negative_chunk_rejected(self):
        with pytest.raises(TaskError):
            DynamicAssignment([1], 1, chunk=-3)

    def test_exhaustion_is_idempotent(self):
        """After the queue drains, every further poll is None, forever."""
        a = DynamicAssignment([1, 2, 3, 4, 5], 3, chunk=2)
        seen = []
        while True:
            task = a.next_task(0)
            if task is None:
                break
            seen.append(task)
        assert seen == [1, 2, 3, 4, 5]
        for _ in range(3):
            for w in range(3):
                assert a.next_task(w) is None
        assert a.remaining() == 0

    def test_remaining_counts_buffered(self):
        """Buffered-but-unprocessed chunk tasks count toward remaining().

        Previously a chunk grab made remaining() drop by the whole
        chunk at once, so monitor ETAs jumped by up to chunk * workers
        roots; now remaining() tracks processed work one task at a
        time.
        """
        a = DynamicAssignment(list(range(10)), 2, chunk=4)
        assert a.remaining() == 10
        a.next_task(0)  # takes 4: one returned, three buffered
        assert a.remaining() == 9
        a.next_task(0)  # from the buffer
        assert a.remaining() == 8
        a.next_task(1)  # fresh grab of 4 by the other worker
        assert a.remaining() == 7

    def test_chunked_drain_is_linear_fifo(self):
        """Index-cursor buffers preserve FIFO order within a chunk."""
        a = DynamicAssignment(list(range(8)), 1, chunk=8)
        assert [a.next_task(0) for _ in range(9)] == list(range(8)) + [None]

    def test_concurrent_uniqueness_chunked(self):
        """Chunked grabs from real threads still hand each root out once."""
        order = list(range(503))  # deliberately not divisible by chunk
        a = DynamicAssignment(order, 8, chunk=7)
        got = [[] for _ in range(8)]

        def worker(k):
            while True:
                task = a.next_task(k)
                if task is None:
                    return
                got[k].append(task)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = [x for lst in got for x in lst]
        assert sorted(flat) == order


class TestFactory:
    def test_static(self):
        a = make_assignment("static", [1, 2], 2)
        assert isinstance(a, StaticAssignment)

    def test_dynamic(self):
        a = make_assignment("dynamic", [1, 2], 2, chunk=2)
        assert isinstance(a, DynamicAssignment)
        assert a.chunk == 2

    def test_unknown(self):
        with pytest.raises(TaskError):
            make_assignment("greedy", [1], 1)
