"""Test package for the ParaPLL reproduction."""
