"""Tests for whole-graph operations."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.ops import (
    connected_components,
    degree_histogram,
    induced_subgraph,
    largest_connected_component,
    relabel,
)

from .conftest import build_graph


class TestComponents:
    def test_single_component(self, path_graph):
        comp = connected_components(path_graph)
        assert set(comp.tolist()) == {0}

    def test_two_components_plus_isolate(self, two_components):
        comp = connected_components(two_components)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]
        assert comp[4] not in (comp[0], comp[2])

    def test_component_ids_dense(self, two_components):
        comp = connected_components(two_components)
        assert sorted(set(comp.tolist())) == [0, 1, 2]

    def test_empty(self):
        g = build_graph([], n=0)
        assert len(connected_components(g)) == 0


class TestLCC:
    def test_extracts_largest(self):
        g = build_graph(
            [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)], name="g"
        )
        sub, keep = largest_connected_component(g)
        assert sub.num_vertices == 3
        assert sorted(keep.tolist()) == [0, 1, 2]

    def test_already_connected(self, path_graph):
        sub, keep = largest_connected_component(path_graph)
        assert sub.num_vertices == path_graph.num_vertices
        assert sub.num_edges == path_graph.num_edges

    def test_preserves_weights(self):
        g = build_graph([(0, 1, 7.0), (2, 3, 1.0), (3, 4, 1.0)])
        sub, keep = largest_connected_component(g)
        assert sub.num_vertices == 3  # {2,3,4}
        assert sub.edge_weight(0, 1) in (1.0,)


class TestSubgraph:
    def test_induced(self, path_graph):
        sub = induced_subgraph(path_graph, [1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert sub.edge_weight(0, 1) == 2.0  # old edge 1-2

    def test_duplicate_ids_rejected(self, path_graph):
        with pytest.raises(GraphError):
            induced_subgraph(path_graph, [0, 0])

    def test_out_of_range_rejected(self, path_graph):
        with pytest.raises(GraphError):
            induced_subgraph(path_graph, [0, 99])

    def test_empty_selection(self, path_graph):
        sub = induced_subgraph(path_graph, [])
        assert sub.num_vertices == 0


class TestRelabel:
    def test_reverse_permutation(self, path_graph):
        n = path_graph.num_vertices
        perm = list(reversed(range(n)))
        g2 = relabel(path_graph, perm)
        # old edge (0,1,w=1) becomes (3,2,w=1)
        assert g2.edge_weight(3, 2) == 1.0
        assert g2.num_edges == path_graph.num_edges

    def test_identity(self, random_graph):
        g2 = relabel(random_graph, range(random_graph.num_vertices))
        assert g2 == random_graph

    def test_not_a_permutation(self, path_graph):
        with pytest.raises(GraphError):
            relabel(path_graph, [0, 0, 1, 2])

    def test_wrong_length(self, path_graph):
        with pytest.raises(GraphError):
            relabel(path_graph, [0, 1])

    def test_degree_multiset_preserved(self, random_graph):
        rng = np.random.default_rng(0)
        perm = rng.permutation(random_graph.num_vertices)
        g2 = relabel(random_graph, perm)
        assert sorted(g2.degrees.tolist()) == sorted(
            random_graph.degrees.tolist()
        )


class TestDegreeHistogram:
    def test_star(self, star_graph):
        hist = degree_histogram(star_graph)
        assert hist == {5: 1, 1: 5}

    def test_total_counts(self, random_graph):
        hist = degree_histogram(random_graph)
        assert sum(hist.values()) == random_graph.num_vertices

    def test_empty(self):
        assert degree_histogram(build_graph([], n=0)) == {}
