"""Tests for the query-log recorder (repro.obs.qlog)."""

import json

import pytest

from repro import obs
from repro.core.index import PLLIndex
from repro.obs import qlog
from repro.obs.qlog import (
    QLOG_SCHEMA,
    QueryLogRecorder,
    read_qlog,
    record_query,
    recording,
    request_scope,
)
from repro.service import DistanceOracle


@pytest.fixture(scope="module")
def index():
    from repro.generators.random_graphs import gnm_random_graph

    graph = gnm_random_graph(40, 100, seed=7)
    return PLLIndex.build(graph)


@pytest.fixture(autouse=True)
def _clean_recorder():
    qlog.uninstall()
    yield
    qlog.uninstall()


class TestRecorder:
    def test_record_fields_and_seq(self):
        rec = QueryLogRecorder()
        first = rec.record("distance", 1, 2, 12.5, cache_hit=True)
        second = rec.record("batch", 3, 4, 7.0, outcome="unreachable")
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["op"] == "distance" and first["cache_hit"] is True
        assert second["outcome"] == "unreachable"
        assert first["req_id"] is None
        assert len(rec) == 2

    def test_capacity_evicts_oldest(self):
        rec = QueryLogRecorder(capacity=3)
        for i in range(5):
            rec.record("distance", i, i + 1, 1.0)
        snap = rec.snapshot()
        assert [r["s"] for r in snap] == [2, 3, 4]
        assert rec.sampled == 5  # lifetime count survives eviction

    def test_bad_capacity_and_sample(self):
        with pytest.raises(ValueError):
            QueryLogRecorder(capacity=0)
        with pytest.raises(ValueError):
            QueryLogRecorder(sample=1.5)

    def test_sampling_extremes(self):
        all_of_it = QueryLogRecorder(sample=1.0)
        none_of_it = QueryLogRecorder(sample=0.0)
        assert all(all_of_it.should_sample() for _ in range(50))
        assert not any(none_of_it.should_sample() for _ in range(50))

    def test_sampling_deterministic_for_seed(self):
        a = QueryLogRecorder(sample=0.3, seed=11)
        b = QueryLogRecorder(sample=0.3, seed=11)
        decisions_a = [a.should_sample() for _ in range(200)]
        decisions_b = [b.should_sample() for _ in range(200)]
        assert decisions_a == decisions_b
        assert 20 < sum(decisions_a) < 100  # roughly 30%

    def test_sample_follows_live_config_knob(self):
        rec = QueryLogRecorder()  # no override -> reads the knob
        try:
            obs.configure(qlog_sample=0.0)
            assert rec.sample == 0.0
            assert not rec.should_sample()
            obs.configure(qlog_sample=1.0)
            assert rec.should_sample()
        finally:
            obs.configure(qlog_sample=1.0)

    def test_configure_rejects_bad_fraction(self):
        with pytest.raises(Exception):
            obs.configure(qlog_sample=2.0)

    def test_snapshot_last(self):
        rec = QueryLogRecorder()
        for i in range(4):
            rec.record("distance", i, i + 1, 1.0)
        assert [r["s"] for r in rec.snapshot(last=2)] == [2, 3]
        assert rec.snapshot(last=0) == []


class TestDumpAndSink:
    def test_write_jsonl_read_roundtrip(self, tmp_path):
        rec = QueryLogRecorder()
        rec.record("distance", 0, 1, 3.0)
        rec.record("batch", 2, 3, 4.0, cache_hit=True)
        path = str(tmp_path / "cap.qlog")
        assert rec.write_jsonl(path) == 2
        with open(path) as fh:
            header = json.loads(fh.readline())
        assert header["schema"] == QLOG_SCHEMA
        assert header["records"] == 2
        records = read_qlog(path)
        assert len(records) == 2
        assert records[1]["cache_hit"] is True

    def test_read_rejects_foreign_schema(self):
        lines = [json.dumps({"kind": "header", "schema": "other/1"})]
        with pytest.raises(ValueError):
            read_qlog(lines)

    def test_read_raw_sink_without_header(self, tmp_path):
        path = str(tmp_path / "raw.jsonl")
        rec = QueryLogRecorder(sink=path)
        rec.record("distance", 5, 6, 2.0)
        rec.close()
        records = read_qlog(path)
        assert len(records) == 1 and records[0]["s"] == 5

    def test_sink_sees_every_record_despite_small_ring(self, tmp_path):
        path = str(tmp_path / "sink.jsonl")
        rec = QueryLogRecorder(capacity=2, sink=path)
        for i in range(5):
            rec.record("distance", i, i + 1, 1.0)
        rec.close()
        assert len(read_qlog(path)) == 5
        assert len(rec) == 2


class TestInstallation:
    def test_record_query_without_recorder_is_noop(self):
        record_query("distance", 0, 1, 1.0)  # must not raise

    def test_recording_restores_previous(self):
        outer = qlog.install(QueryLogRecorder())
        inner = QueryLogRecorder()
        with recording(inner):
            assert qlog.active() is inner
            record_query("distance", 0, 1, 1.0)
        assert qlog.active() is outer
        assert len(inner) == 1 and len(outer) == 0

    def test_request_scope_nests_and_restores(self):
        assert qlog.current_req_id() is None
        with request_scope(7):
            assert qlog.current_req_id() == 7
            with request_scope(8):
                assert qlog.current_req_id() == 8
            assert qlog.current_req_id() == 7
        assert qlog.current_req_id() is None

    def test_record_query_defaults_req_id_from_scope(self):
        with recording(QueryLogRecorder()) as rec:
            with request_scope(42):
                record_query("distance", 0, 1, 1.0)
        assert rec.snapshot()[0]["req_id"] == 42

    def test_obs_reset_clears_active_ring(self):
        rec = qlog.install(QueryLogRecorder())
        rec.record("distance", 0, 1, 1.0)
        obs.reset()
        assert len(rec) == 0


class TestOracleIntegration:
    def test_distance_records_miss_then_hit(self, index):
        oracle = DistanceOracle(index)
        with recording(QueryLogRecorder(sample=1.0)) as rec:
            oracle.distance(0, 5)
            oracle.distance(5, 0)  # symmetric twin -> cache hit
        miss, hit = rec.snapshot()
        assert miss["cache_hit"] is False and miss["entries_scanned"] > 0
        assert hit["cache_hit"] is True
        assert miss["outcome"] == "ok"
        assert miss["latency_us"] > 0.0

    def test_unreachable_outcome(self, two_components):
        oracle = DistanceOracle(PLLIndex.build(two_components))
        with recording(QueryLogRecorder(sample=1.0)) as rec:
            oracle.distance(0, 2)
        assert rec.snapshot()[0]["outcome"] == "unreachable"

    def test_batch_records_per_pair(self, index):
        oracle = DistanceOracle(index)
        oracle.distance(0, 1)  # prime the cache
        with recording(QueryLogRecorder(sample=1.0)) as rec:
            oracle.batch([(0, 1), (2, 3)])
        records = rec.snapshot()
        assert [r["op"] for r in records] == ["batch", "batch"]
        assert records[0]["cache_hit"] is True
        assert records[1]["cache_hit"] is False

    def test_unsampled_traffic_costs_no_records(self, index):
        oracle = DistanceOracle(index)
        with recording(QueryLogRecorder(sample=0.0)) as rec:
            oracle.distance(0, 5)
            oracle.batch([(1, 2)])
        assert len(rec) == 0
