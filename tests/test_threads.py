"""Tests for the real thread-based ParaPLL (correctness under concurrency)."""

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.serial import build_serial
from repro.errors import TaskError
from repro.parallel.threads import build_parallel_threads
from repro.generators.random_graphs import gnm_random_graph


@pytest.mark.parametrize("policy", ["static", "dynamic"])
@pytest.mark.parametrize("threads", [1, 2, 4])
def test_exact_distances(random_graph, policy, threads):
    """Proposition 1: any schedule yields exact query answers."""
    index = build_parallel_threads(random_graph, threads, policy=policy)
    for s in (0, 13, 29):
        truth = dijkstra_sssp(random_graph, s)
        for t in range(random_graph.num_vertices):
            assert index.distance(s, t) == truth[t]


def test_single_thread_matches_serial_exactly(random_graph):
    """p=1 is the serial algorithm: identical label sets, not just answers."""
    index = build_parallel_threads(random_graph, 1, policy="dynamic")
    serial_store, _ = build_serial(random_graph)
    assert index.store == serial_store


def test_parallel_labels_are_superset_in_correctness(medium_graph):
    """Redundant labels allowed; every entry must be a true distance."""
    index = build_parallel_threads(medium_graph, 4, policy="dynamic")
    order = index.order
    for v in range(0, medium_graph.num_vertices, 17):
        truth_to_v = None
        for hub_rank, dist in index.store.entries_of(v):
            hub = int(order[hub_rank])
            truth = dijkstra_sssp(medium_graph, hub)
            assert truth[v] == dist


def test_stats_recorded(random_graph):
    index = build_parallel_threads(random_graph, 2)
    assert index.stats is not None
    assert index.stats.build_seconds > 0
    assert index.stats.total_entries == index.store.total_entries


def test_invalid_thread_count(random_graph):
    with pytest.raises(TaskError):
        build_parallel_threads(random_graph, 0)


def test_invalid_policy(random_graph):
    with pytest.raises(TaskError):
        build_parallel_threads(random_graph, 2, policy="nope")


def test_chunked_dynamic(random_graph):
    index = build_parallel_threads(
        random_graph, 3, policy="dynamic", chunk=4
    )
    truth = dijkstra_sssp(random_graph, 2)
    for t in range(random_graph.num_vertices):
        assert index.distance(2, t) == truth[t]


def test_disconnected_graph(two_components):
    index = build_parallel_threads(two_components, 2)
    assert index.distance(0, 1) == 1.0
    assert index.distance(0, 2) == float("inf")


def test_larger_graph_many_threads():
    g = gnm_random_graph(150, 450, seed=3)
    index = build_parallel_threads(g, 8, policy="dynamic")
    truth = dijkstra_sssp(g, 0)
    for t in range(g.num_vertices):
        assert index.distance(0, t) == truth[t]


def test_poisoned_root_fails_fast(random_graph, monkeypatch):
    """The first failure sets the shared stop flag: survivors abort at
    their next task grab instead of indexing the whole remaining root
    set before the error surfaces."""
    from repro.core import engines

    n = random_graph.num_vertices
    attempts = []  # list.append is atomic under the GIL
    real = engines.make_engine

    class _Poisoned:
        def __init__(self, inner, poison):
            self._inner = inner
            self._poison = poison

        def run(self, root, store, stats=None):
            attempts.append(root)
            if root == self._poison:
                raise ValueError(f"poisoned root {root}")
            if stats is None:
                return self._inner.run(root, store)
            return self._inner.run(root, store, stats)

        def rank_of(self, v):
            return self._inner.rank_of(v)

    def patched(kind, graph, order, **kwargs):
        poison = int(list(order)[4])
        return _Poisoned(real(kind, graph, order, **kwargs), poison)

    monkeypatch.setattr(engines, "make_engine", patched)
    with pytest.raises(ValueError, match="poisoned root") as excinfo:
        build_parallel_threads(random_graph, 4, policy="dynamic")
    assert isinstance(excinfo.value.__cause__, TaskError)
    # Poison at index 4: the roots before it, the poison itself, and at
    # most ~one in-flight root per surviving worker — far below the n
    # an un-cancelled build would burn through.
    assert len(attempts) <= 4 + 1 + 3 * 4
    assert len(attempts) < n // 2
