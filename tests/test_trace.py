"""Tests for schedule-trace analysis and Gantt rendering."""

import pytest

from repro.errors import SimulationError
from repro.sim.executor import simulate_intra_node
from repro.sim.trace import ScheduleTrace, gantt_ascii


EVENTS = [
    (0, 10, 0.0, 2.0),
    (1, 11, 0.0, 1.0),
    (1, 12, 1.0, 3.0),
    (0, 13, 2.0, 2.5),
]


class TestTrace:
    def test_basic_analysis(self):
        trace = ScheduleTrace.from_events(EVENTS)
        assert trace.num_workers == 2
        assert trace.makespan == 3.0
        assert trace.busy == [2.5, 3.0]
        assert trace.idle == [0.5, 0.0]
        assert trace.tasks_per_worker == [2, 2]
        assert trace.utilisation[1] == pytest.approx(1.0)

    def test_mean_utilisation(self):
        trace = ScheduleTrace.from_events(EVENTS)
        assert trace.mean_utilisation == pytest.approx(
            (2.5 / 3 + 1.0) / 2
        )

    def test_empty_schedule(self):
        with pytest.raises(SimulationError):
            ScheduleTrace.from_events([])

    def test_negative_span(self):
        with pytest.raises(SimulationError):
            ScheduleTrace.from_events([(0, 1, 2.0, 1.0)])

    def test_summary_text(self):
        text = ScheduleTrace.from_events(EVENTS).summary()
        assert "worker 0" in text
        assert "makespan" in text


class TestGantt:
    def test_renders_rows(self):
        art = gantt_ascii(EVENTS, width=40)
        assert "w0 |" in art
        assert "w1 |" in art
        assert "#" in art

    def test_truncates_many_workers(self):
        events = [(w, w, 0.0, 1.0) for w in range(20)]
        art = gantt_ascii(events, max_workers=4)
        assert "more workers" in art

    def test_from_real_simulation(self, random_graph):
        _idx, run = simulate_intra_node(
            random_graph, 3, record_schedule=True, jitter=0.2, seed=1
        )
        trace = ScheduleTrace.from_events(run.schedule)
        assert trace.num_workers == 3
        assert trace.makespan == pytest.approx(run.makespan)
        # The chart renders without error and covers all rows.
        art = gantt_ascii(run.schedule)
        assert art.count("|") >= 6

    def test_busy_matches_run_accounting(self, random_graph):
        _idx, run = simulate_intra_node(
            random_graph, 4, record_schedule=True, seed=2
        )
        trace = ScheduleTrace.from_events(run.schedule)
        for w in range(4):
            assert trace.busy[w] == pytest.approx(run.per_worker_busy[w])
