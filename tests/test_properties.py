"""Property-based tests (hypothesis) for the core invariants.

The headline invariant — PLL answers equal Dijkstra on arbitrary
weighted graphs — is exercised here over randomly generated edge lists,
orderings, and parallel schedules.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.index import PLLIndex
from repro.core.labels import LabelStore
from repro.core.query import query_distance, query_numpy
from repro.core.serial import build_serial
from repro.graph.builder import GraphBuilder
from repro.graph.order import by_random
from repro.sim.executor import simulate_intra_node


@st.composite
def graphs(draw, max_n=14, max_m=30):
    """A random small weighted graph (possibly disconnected)."""
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    builder = GraphBuilder(num_vertices=n)
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        w = draw(
            st.floats(0.1, 50.0, allow_nan=False, allow_infinity=False)
        )
        if u != v:
            builder.add_edge(u, v, w)
    return builder.build()


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_serial_pll_equals_dijkstra(graph):
    store, _ = build_serial(graph)
    store.finalize()
    for s in range(graph.num_vertices):
        truth = dijkstra_sssp(graph, s)
        for t in range(graph.num_vertices):
            got = query_distance(store, s, t)
            assert got == truth[t] or math.isclose(got, truth[t])


@given(graphs(), st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_pll_invariant_under_any_ordering(graph, seed):
    order = by_random(graph, seed=seed)
    store, _ = build_serial(graph, order=order)
    store.finalize()
    truth = dijkstra_sssp(graph, 0)
    for t in range(graph.num_vertices):
        got = query_distance(store, 0, t)
        assert got == truth[t] or math.isclose(got, truth[t])


@given(graphs(), st.integers(2, 6), st.sampled_from(["static", "dynamic"]))
@settings(max_examples=30, deadline=None)
def test_simulated_parallel_is_exact(graph, workers, policy):
    """Proposition 1 under arbitrary simulated schedules."""
    index, _run = simulate_intra_node(
        graph, workers, policy=policy, jitter=0.4, worker_jitter=0.4, seed=1
    )
    truth = dijkstra_sssp(graph, 0)
    for t in range(graph.num_vertices):
        got = index.distance(0, t)
        assert got == truth[t] or math.isclose(got, truth[t])


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_parallel_entries_superset_of_serial(graph):
    """Out-of-order indexing only ever ADDS labels (redundancy, §4.3)."""
    serial_store, _ = build_serial(graph)
    index, _run = simulate_intra_node(graph, 4, jitter=0.3, seed=2)
    for v in range(graph.num_vertices):
        serial_hubs = set(serial_store.hubs_of(v))
        parallel_hubs = set(index.store.hubs_of(v))
        assert serial_hubs <= parallel_hubs


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_query_implementations_agree(graph):
    store, _ = build_serial(graph)
    store.finalize()
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert query_distance(store, s, t) == query_numpy(store, s, t)


@given(
    st.lists(
        st.tuples(
            st.integers(0, 9),
            st.integers(0, 9),
            st.floats(0.1, 100, allow_nan=False),
        ),
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_label_store_roundtrip(entries):
    store = LabelStore(10)
    store.add_delta(entries)
    back = LabelStore.from_arrays(**store.to_arrays())
    # Roundtrip dedupes to the min distance; re-serialising is stable.
    again = LabelStore.from_arrays(**back.to_arrays())
    assert back == again


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_index_save_load_preserves_distances(tmp_path_factory, graph):
    index = PLLIndex.build(graph)
    path = tmp_path_factory.mktemp("idx") / "x.npz"
    index.save(path)
    loaded = PLLIndex.load(path)
    for s in range(graph.num_vertices):
        for t in range(graph.num_vertices):
            assert loaded.distance(s, t) == index.distance(s, t)


@given(
    st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=30),
    st.floats(0.5, 10.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_builder_idempotent_under_duplicates(pairs, weight):
    """Adding the same edge list twice changes nothing (min policy)."""
    a = GraphBuilder(num_vertices=9)
    b = GraphBuilder(num_vertices=9)
    for u, v in pairs:
        if u != v:
            a.add_edge(u, v, weight)
            b.add_edge(u, v, weight)
            b.add_edge(v, u, weight)
    assert a.build() == b.build()
