"""Tests for the PLLIndex facade."""

import math

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.index import PLLIndex
from repro.errors import GraphError
from repro.graph.order import by_degree
from repro.pq import PQ_IMPLEMENTATIONS


class TestBuildQuery:
    def test_distance_matches_dijkstra(self, random_graph):
        index = PLLIndex.build(random_graph)
        for s in (0, 11, 23):
            truth = dijkstra_sssp(random_graph, s)
            for t in range(random_graph.num_vertices):
                assert index.distance(s, t) == truth[t]

    def test_query_hub_is_vertex_id_on_path(self, triangle):
        index = PLLIndex.build(triangle)
        res = index.query(0, 2)
        assert res.distance == 2.0
        # The meeting hub must realise the distance exactly.
        h = res.hub
        truth0 = dijkstra_sssp(triangle, 0)
        truth2 = dijkstra_sssp(triangle, 2)
        assert truth0[h] + truth2[h] == 2.0

    def test_unreachable_pair(self, two_components):
        index = PLLIndex.build(two_components)
        res = index.query(0, 3)
        assert res.distance == math.inf
        assert res.hub is None

    def test_distances_from_batch(self, random_graph):
        index = PLLIndex.build(random_graph)
        truth = dijkstra_sssp(random_graph, 5)
        got = index.distances_from(5, range(random_graph.num_vertices))
        assert got == truth

    def test_out_of_range_query(self, path_graph):
        index = PLLIndex.build(path_graph)
        with pytest.raises(GraphError):
            index.distance(0, 77)
        with pytest.raises(GraphError):
            index.distance(-1, 0)

    def test_avg_label_size(self, random_graph):
        index = PLLIndex.build(random_graph)
        assert index.avg_label_size() == pytest.approx(
            index.store.avg_label_size
        )
        assert index.num_vertices == random_graph.num_vertices

    def test_custom_pq(self, random_graph):
        index = PLLIndex.build(
            random_graph, pq_factory=PQ_IMPLEMENTATIONS["pairing"]
        )
        truth = dijkstra_sssp(random_graph, 1)
        assert index.distance(1, 20) == truth[20]

    def test_custom_order(self, random_graph):
        order = list(reversed(by_degree(random_graph).tolist()))
        index = PLLIndex.build(random_graph, order=order)
        truth = dijkstra_sssp(random_graph, 2)
        assert index.distance(2, 17) == truth[17]


class TestPersistence:
    def test_save_load_roundtrip(self, random_graph, tmp_path):
        index = PLLIndex.build(random_graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path)
        for s in (0, 3):
            for t in range(random_graph.num_vertices):
                assert loaded.distance(s, t) == index.distance(s, t)

    def test_load_without_graph_queries_fine(self, path_graph, tmp_path):
        index = PLLIndex.build(path_graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path)
        assert loaded.graph is None
        assert loaded.distance(0, 3) == 6.0

    def test_load_with_graph_enables_verify(self, path_graph, tmp_path):
        index = PLLIndex.build(path_graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path, graph=path_graph)
        loaded.verify_against_dijkstra([0, 1])

    def test_hub_ids_survive_roundtrip(self, triangle, tmp_path):
        index = PLLIndex.build(triangle)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path)
        assert loaded.query(0, 2).hub == index.query(0, 2).hub

    def test_roundtrip_bit_exact_on_sampled_pairs(
        self, random_graph, tmp_path
    ):
        index = PLLIndex.build(random_graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path)
        rng = np.random.default_rng(7)
        n = random_graph.num_vertices
        pairs = rng.integers(0, n, size=(100, 2))
        before = [index.distance(int(s), int(t)) for s, t in pairs]
        after = [loaded.distance(int(s), int(t)) for s, t in pairs]
        # Bit-exact, not approx: load adopts the saved arrays verbatim.
        assert before == after

    def test_duplicate_hub_store_roundtrip(self, path_graph, tmp_path):
        # Delayed-sync (c > 1) builds produce duplicated hubs; finalize
        # dedups with min, and the saved form must query identically.
        index = PLLIndex.build(path_graph)
        before = {(s, t): index.distance(s, t)
                  for s in range(4) for t in range(4)}
        hub = int(index.store.finalized_hubs(3)[0])
        dist = float(index.store.finalized_dists(3)[0])
        index.store.add(3, hub, dist + 7.0)  # stale, worse duplicate
        index.store.add(3, hub, dist)        # exact duplicate
        index.store.finalize()
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path)
        for (s, t), want in before.items():
            assert loaded.distance(s, t) == want

    def test_load_never_refinalizes(self, random_graph, tmp_path, monkeypatch):
        index = PLLIndex.build(random_graph)
        path = tmp_path / "idx.npz"
        index.save(path)

        import repro.core.labels as labels_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("load must not re-sort/dedup labels")

        monkeypatch.setattr(labels_mod, "_sort_dedup_flat", boom)
        loaded = PLLIndex.load(path)
        assert loaded.distance(0, 1) == index.distance(0, 1)

    def test_dir_bundle_roundtrip_with_mmap(self, random_graph, tmp_path):
        index = PLLIndex.build(random_graph)
        bundle = tmp_path / "idx.bundle"
        index.save(bundle, format="dir")
        loaded = PLLIndex.load(bundle, mmap=True)
        _, hubs, _ = loaded.store.finalized_arrays()
        assert isinstance(hubs, np.memmap)
        for s, t in ((0, 1), (3, 17), (5, 5)):
            assert loaded.distance(s, t) == index.distance(s, t)

    def test_mmap_of_npz_rejected(self, path_graph, tmp_path):
        index = PLLIndex.build(path_graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        with pytest.raises(GraphError, match="dir"):
            PLLIndex.load(path, mmap=True)

    def test_unknown_save_format_rejected(self, path_graph, tmp_path):
        index = PLLIndex.build(path_graph)
        with pytest.raises(GraphError):
            index.save(tmp_path / "idx", format="pickle")


class TestCorruptFiles:
    """Corrupt index files must raise GraphError, never answer inf."""

    def _saved_arrays(self, graph, tmp_path):
        index = PLLIndex.build(graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        with np.load(path) as data:
            return path, {k: data[k] for k in data.files}

    def _rewrite(self, path, arrays, **overrides):
        arrays = dict(arrays, **overrides)
        np.savez_compressed(path, **arrays)
        return path

    def test_decreasing_indptr_rejected(self, random_graph, tmp_path):
        path, arrays = self._saved_arrays(random_graph, tmp_path)
        indptr = arrays["label_indptr"].copy()
        indptr[5], indptr[6] = indptr[6], indptr[5] - 1
        self._rewrite(path, arrays, label_indptr=indptr)
        with pytest.raises(GraphError):
            PLLIndex.load(path)

    def test_unsorted_hubs_rejected(self, random_graph, tmp_path):
        path, arrays = self._saved_arrays(random_graph, tmp_path)
        hubs = arrays["label_hubs"].copy()
        indptr = arrays["label_indptr"]
        # Reverse the first vertex with at least 2 entries.
        v = int(np.flatnonzero(np.diff(indptr) >= 2)[0])
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        hubs[lo:hi] = hubs[lo:hi][::-1]
        self._rewrite(path, arrays, label_hubs=hubs)
        with pytest.raises(GraphError, match=f"vertex {v}"):
            PLLIndex.load(path)

    def test_out_of_range_hub_rejected(self, random_graph, tmp_path):
        path, arrays = self._saved_arrays(random_graph, tmp_path)
        hubs = arrays["label_hubs"].copy()
        hubs[0] = random_graph.num_vertices + 3
        self._rewrite(path, arrays, label_hubs=hubs)
        with pytest.raises(GraphError):
            PLLIndex.load(path)

    def test_short_order_rejected(self, random_graph, tmp_path):
        path, arrays = self._saved_arrays(random_graph, tmp_path)
        self._rewrite(path, arrays, order=arrays["order"][:-2])
        with pytest.raises(GraphError, match="permutation"):
            PLLIndex.load(path)

    def test_non_permutation_order_rejected(self, random_graph, tmp_path):
        path, arrays = self._saved_arrays(random_graph, tmp_path)
        order = arrays["order"].copy()
        order[0] = order[1]  # duplicate rank
        self._rewrite(path, arrays, order=order)
        with pytest.raises(GraphError, match="permutation"):
            PLLIndex.load(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(GraphError):
            PLLIndex.load(path)

    def test_missing_member_rejected(self, path_graph, tmp_path):
        path, arrays = self._saved_arrays(path_graph, tmp_path)
        arrays.pop("label_dists")
        np.savez_compressed(path, **arrays)
        with pytest.raises(GraphError):
            PLLIndex.load(path)


class TestBatchQuery:
    def test_batch_matches_scalar_on_random_graph(self, random_graph):
        index = PLLIndex.build(random_graph)
        rng = np.random.default_rng(11)
        n = random_graph.num_vertices
        pairs = rng.integers(0, n, size=(1000, 2))
        batch = index.distance_batch(pairs)
        scalar = np.array(
            [index.distance(int(s), int(t)) for s, t in pairs]
        )
        assert np.array_equal(batch, scalar)

    def test_small_batch_fallback_matches(self, random_graph):
        index = PLLIndex.build(random_graph)
        pairs = [(0, 1), (2, 3), (4, 4), (5, 39)]
        batch = index.distance_batch(pairs)
        scalar = [index.distance(s, t) for s, t in pairs]
        assert batch.tolist() == scalar

    def test_unreachable_pairs_are_inf(self, two_components):
        index = PLLIndex.build(two_components)
        pairs = [(0, 3), (0, 1), (2, 3), (3, 0)]
        out = index.distance_batch(pairs)
        assert out.tolist() == [index.distance(s, t) for s, t in pairs]
        assert out[0] == math.inf and out[3] == math.inf

    def test_empty_batch(self, path_graph):
        index = PLLIndex.build(path_graph)
        out = index.distance_batch(np.empty((0, 2), dtype=np.int64))
        assert out.shape == (0,)

    def test_self_pairs_zero(self, path_graph):
        index = PLLIndex.build(path_graph)
        out = index.distance_batch([(v, v) for v in range(4)])
        assert out.tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_bad_shape_rejected(self, path_graph):
        index = PLLIndex.build(path_graph)
        with pytest.raises(GraphError):
            index.distance_batch([(0, 1, 2)])

    def test_out_of_range_rejected(self, path_graph):
        index = PLLIndex.build(path_graph)
        with pytest.raises(GraphError):
            index.distance_batch([(0, 99)])
        with pytest.raises(GraphError):
            index.distance_batch([(-1, 2)])


class TestVerify:
    def test_verify_passes(self, random_graph):
        index = PLLIndex.build(random_graph)
        index.verify_against_dijkstra(range(0, 40, 10))

    def test_verify_without_graph_raises(self, path_graph, tmp_path):
        index = PLLIndex.build(path_graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path)
        with pytest.raises(GraphError):
            loaded.verify_against_dijkstra([0])

    def test_verify_detects_corruption(self, path_graph):
        index = PLLIndex.build(path_graph)
        # Corrupt one finalized distance through the zero-copy slice.
        index.store.finalize()
        index.store.finalized_dists(3)[:] = 999.0
        with pytest.raises(AssertionError):
            index.verify_against_dijkstra([0])
