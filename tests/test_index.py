"""Tests for the PLLIndex facade."""

import math

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.index import PLLIndex
from repro.errors import GraphError
from repro.graph.order import by_degree
from repro.pq import PQ_IMPLEMENTATIONS


class TestBuildQuery:
    def test_distance_matches_dijkstra(self, random_graph):
        index = PLLIndex.build(random_graph)
        for s in (0, 11, 23):
            truth = dijkstra_sssp(random_graph, s)
            for t in range(random_graph.num_vertices):
                assert index.distance(s, t) == truth[t]

    def test_query_hub_is_vertex_id_on_path(self, triangle):
        index = PLLIndex.build(triangle)
        res = index.query(0, 2)
        assert res.distance == 2.0
        # The meeting hub must realise the distance exactly.
        h = res.hub
        truth0 = dijkstra_sssp(triangle, 0)
        truth2 = dijkstra_sssp(triangle, 2)
        assert truth0[h] + truth2[h] == 2.0

    def test_unreachable_pair(self, two_components):
        index = PLLIndex.build(two_components)
        res = index.query(0, 3)
        assert res.distance == math.inf
        assert res.hub is None

    def test_distances_from_batch(self, random_graph):
        index = PLLIndex.build(random_graph)
        truth = dijkstra_sssp(random_graph, 5)
        got = index.distances_from(5, range(random_graph.num_vertices))
        assert got == truth

    def test_out_of_range_query(self, path_graph):
        index = PLLIndex.build(path_graph)
        with pytest.raises(GraphError):
            index.distance(0, 77)
        with pytest.raises(GraphError):
            index.distance(-1, 0)

    def test_avg_label_size(self, random_graph):
        index = PLLIndex.build(random_graph)
        assert index.avg_label_size() == pytest.approx(
            index.store.avg_label_size
        )
        assert index.num_vertices == random_graph.num_vertices

    def test_custom_pq(self, random_graph):
        index = PLLIndex.build(
            random_graph, pq_factory=PQ_IMPLEMENTATIONS["pairing"]
        )
        truth = dijkstra_sssp(random_graph, 1)
        assert index.distance(1, 20) == truth[20]

    def test_custom_order(self, random_graph):
        order = list(reversed(by_degree(random_graph).tolist()))
        index = PLLIndex.build(random_graph, order=order)
        truth = dijkstra_sssp(random_graph, 2)
        assert index.distance(2, 17) == truth[17]


class TestPersistence:
    def test_save_load_roundtrip(self, random_graph, tmp_path):
        index = PLLIndex.build(random_graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path)
        for s in (0, 3):
            for t in range(random_graph.num_vertices):
                assert loaded.distance(s, t) == index.distance(s, t)

    def test_load_without_graph_queries_fine(self, path_graph, tmp_path):
        index = PLLIndex.build(path_graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path)
        assert loaded.graph is None
        assert loaded.distance(0, 3) == 6.0

    def test_load_with_graph_enables_verify(self, path_graph, tmp_path):
        index = PLLIndex.build(path_graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path, graph=path_graph)
        loaded.verify_against_dijkstra([0, 1])

    def test_hub_ids_survive_roundtrip(self, triangle, tmp_path):
        index = PLLIndex.build(triangle)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path)
        assert loaded.query(0, 2).hub == index.query(0, 2).hub


class TestVerify:
    def test_verify_passes(self, random_graph):
        index = PLLIndex.build(random_graph)
        index.verify_against_dijkstra(range(0, 40, 10))

    def test_verify_without_graph_raises(self, path_graph, tmp_path):
        index = PLLIndex.build(path_graph)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = PLLIndex.load(path)
        with pytest.raises(GraphError):
            loaded.verify_against_dijkstra([0])

    def test_verify_detects_corruption(self, path_graph):
        index = PLLIndex.build(path_graph)
        # Corrupt one finalized distance.
        index.store.finalize()
        index.store._finalized_dists[3][:] = 999.0
        with pytest.raises(AssertionError):
            index.verify_against_dijkstra([0])
