"""Tests for the project lint engine (repro.check.lint).

Each rule gets a synthetic snippet that must fire at a known line, and
a near-miss that must not fire — the rules are only useful if they are
precise enough to run with zero suppression noise.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.check.lint import (
    Suppression,
    all_rules,
    format_github,
    format_json,
    format_text,
    lint_paths,
    load_suppressions,
)
from repro.errors import CheckError

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path, relpath, source):
    """Write *source* at *relpath* under tmp and lint just that file."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path, lint_paths([str(path)])


def hits(report, rule):
    return [v for v in report.violations if v.rule == rule]


class TestDeterminismRule:
    def test_wallclock_in_sim_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/sim/clock.py",
            """\
            import time


            def stamp():
                return time.time()
            """,
        )
        (v,) = hits(rep, "PC001")
        assert v.line == 5

    def test_unseeded_rng_in_core_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/pick.py",
            """\
            import numpy as np


            def pick():
                rng = np.random.default_rng()
                return rng.integers(0, 10)
            """,
        )
        (v,) = hits(rep, "PC001")
        assert v.line == 5

    def test_random_module_in_sim_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/sim/jitter.py",
            """\
            import random


            def jitter():
                return random.random()
            """,
        )
        assert hits(rep, "PC001")

    def test_seeded_rng_is_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/sim/ok.py",
            """\
            import numpy as np


            def pick(seed):
                rng = np.random.default_rng(seed)
                return rng.integers(0, 10)
            """,
        )
        assert not hits(rep, "PC001")

    def test_wallclock_outside_scope_is_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/obs/clock.py",
            """\
            import time


            def stamp():
                return time.time()
            """,
        )
        assert not hits(rep, "PC001")


class TestLockDisciplineRule:
    def test_unlocked_store_mutation_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/parallel/bad.py",
            """\
            def commit(store, commit_lock, delta):
                with commit_lock:
                    store.add_delta(delta)


            def bad_commit(store, delta):
                store.add_delta(delta)
            """,
        )
        (v,) = hits(rep, "PC002")
        assert v.line == 7

    def test_acquire_release_dataflow(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/parallel/manual.py",
            """\
            def manual(store, queue_lock, delta):
                queue_lock.acquire()
                store.add_delta(delta)
                queue_lock.release()
                store.add_delta(delta)
            """,
        )
        (v,) = hits(rep, "PC002")
        assert v.line == 5

    def test_constructor_writes_are_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/parallel/ctor.py",
            """\
            class Queue:
                def __init__(self, order):
                    self._next = 0
                    self._order = order
            """,
        )
        assert not hits(rep, "PC002")

    def test_shared_cursor_write_outside_lock_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/parallel/cursor.py",
            """\
            class Queue:
                def take(self):
                    self._next = self._next + 1
                    return self._next
            """,
        )
        (v,) = hits(rep, "PC002")
        assert v.line == 3

    def test_outside_scope_is_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/serialish.py",
            """\
            def merge(store, other):
                store.merge_from(other)
            """,
        )
        assert not hits(rep, "PC002")


class TestFloatEqualityRule:
    def test_distance_equality_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/verify.py",
            """\
            def check(index, truth, t):
                got = index.distance(0, t)
                if got == truth[t]:
                    return True
                return False
            """,
        )
        (v,) = hits(rep, "PC003")
        assert v.line == 3

    def test_inf_sentinel_comparison_is_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/reach.py",
            """\
            from repro.types import INF


            def unreachable(index, t):
                got = index.distance(0, t)
                return got == INF
            """,
        )
        assert not hits(rep, "PC003")

    def test_sanctioned_module_is_exempt(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/paths.py",
            """\
            def isclose_distance(a, b):
                got = a
                want = b
                return got == want
            """,
        )
        assert not hits(rep, "PC003")

    def test_non_distance_equality_is_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/names.py",
            """\
            def same_name(a, b):
                return a.name == b.name
            """,
        )
        assert not hits(rep, "PC003")


class TestExceptionHygieneRule:
    def test_bare_except_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/parallel/swallow.py",
            """\
            def loop():
                try:
                    work()
                except:
                    pass
            """,
        )
        (v,) = hits(rep, "PC004")
        assert v.line == 4

    def test_swallowed_broad_exception_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/service/worker.py",
            """\
            def loop():
                try:
                    work()
                except Exception:
                    return None
            """,
        )
        (v,) = hits(rep, "PC004")
        assert v.line == 4

    def test_recorded_exception_is_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/parallel/record.py",
            """\
            def loop(errors):
                try:
                    work()
                except Exception as exc:
                    errors.append(exc)
            """,
        )
        assert not hits(rep, "PC004")

    def test_reraise_is_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/parallel/reraise.py",
            """\
            def loop():
                try:
                    work()
                except Exception:
                    cleanup()
                    raise
            """,
        )
        assert not hits(rep, "PC004")


class TestImportLayeringRule:
    def test_upward_import_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/graph/upward.py",
            """\
            from repro.cluster.runner import run_cluster_threads
            """,
        )
        (v,) = hits(rep, "PC005")
        assert v.line == 1

    def test_obs_facade_is_sanctioned(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/lowlevel.py",
            """\
            from repro.obs import config as _obs_config
            from repro.obs import trace as _trace
            """,
        )
        assert not hits(rep, "PC005")

    def test_check_hooks_is_sanctioned(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/parallel/hooked.py",
            """\
            from repro.check import hooks as _check_hooks
            """,
        )
        assert not hits(rep, "PC005")

    def test_lazy_import_is_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/graph/lazy.py",
            """\
            def diameter(graph):
                from repro.baselines.dijkstra import dijkstra_sssp

                return dijkstra_sssp(graph, 0)
            """,
        )
        assert not hits(rep, "PC005")

    def test_downward_import_is_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/cluster/downward.py",
            """\
            from repro.graph.csr import CSRGraph
            """,
        )
        assert not hits(rep, "PC005")


class TestLabelInternalsRule:
    def test_read_of_finalized_slot_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/service/peek.py",
            """\
            def entries(store):
                return len(store._finalized_hubs)
            """,
        )
        (v,) = hits(rep, "PC006")
        assert v.line == 2
        assert "_finalized_hubs" in v.message

    def test_write_of_finalized_slot_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/tamper.py",
            """\
            def corrupt(store):
                store._finalized_dists = None
                store._finalized_indptr = None
            """,
        )
        assert len(hits(rep, "PC006")) == 2

    def test_labels_module_itself_is_exempt(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/labels.py",
            """\
            class LabelStore:
                def finalized_arrays(self):
                    return self._finalized_indptr, self._finalized_hubs
            """,
        )
        assert not hits(rep, "PC006")

    def test_public_accessors_are_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/service/clean.py",
            """\
            def entries(store, v):
                return store.finalized_hubs(v), store.finalized_arrays()
            """,
        )
        assert not hits(rep, "PC006")


class TestShimImportRule:
    def test_plain_import_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/legacy.py",
            """\
            import repro.analysis
            """,
        )
        (v,) = hits(rep, "PC012")
        assert v.line == 1

    def test_from_import_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/legacy.py",
            """\
            from repro.analysis import audit_index
            """,
        )
        assert len(hits(rep, "PC012")) == 1

    def test_from_repro_import_analysis_fires(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/legacy.py",
            """\
            from repro import analysis
            """,
        )
        assert len(hits(rep, "PC012")) == 1

    def test_efficiency_import_is_fine(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/modern.py",
            """\
            from repro.efficiency import proposition2_bound
            """,
        )
        assert not hits(rep, "PC012")

    def test_the_shim_itself_is_exempt(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/analysis.py",
            """\
            import repro.analysis
            """,
        )
        assert not hits(rep, "PC012")

    def test_shim_still_warns_on_import(self):
        import importlib
        import sys

        sys.modules.pop("repro.analysis", None)
        with pytest.warns(DeprecationWarning, match="repro.efficiency"):
            importlib.import_module("repro.analysis")


class TestEngine:
    def test_syntax_error_reports_pc000(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/broken.py", "def broken(:\n"
        )
        (v,) = rep.violations
        assert v.rule == "PC000"

    def test_inline_pragma_suppresses(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/pragma.py",
            """\
            def check(index, truth, t):
                got = index.distance(0, t)
                return got == truth[t]  # lint-ok: PC003 — exact by design
            """,
        )
        assert not rep.violations
        assert len(rep.suppressed) == 1

    def test_pragma_is_rule_specific(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/pragma2.py",
            """\
            def check(index, truth, t):
                got = index.distance(0, t)
                return got == truth[t]  # lint-ok: PC001
            """,
        )
        assert hits(rep, "PC003")

    def test_suppression_file_matching(self, tmp_path):
        path = tmp_path / "repro" / "core" / "supp.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "def f(index, truth, t):\n"
            "    got = index.distance(0, t)\n"
            "    return got == truth[t]\n"
        )
        sup = Suppression(
            rule="PC003", path="repro/core/supp.py", reason="test"
        )
        rep = lint_paths([str(path)], suppressions=[sup])
        assert not rep.violations
        assert len(rep.suppressed) == 1
        assert not rep.unused_suppressions

    def test_unused_suppression_is_reported(self, tmp_path):
        path = tmp_path / "repro" / "core" / "clean.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        sup = Suppression(rule="PC003", path="nowhere.py", reason="stale")
        rep = lint_paths([str(path)], suppressions=[sup])
        assert rep.unused_suppressions == [sup]

    def test_suppression_file_requires_reasons(self, tmp_path):
        doc = {"suppressions": [{"rule": "PC003", "path": "x.py", "reason": ""}]}
        path = tmp_path / "sup.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckError):
            load_suppressions(str(path))

    def test_cache_roundtrip(self, tmp_path):
        src = tmp_path / "repro" / "core" / "cached.py"
        src.parent.mkdir(parents=True)
        src.write_text(
            "def f(index, truth, t):\n"
            "    got = index.distance(0, t)\n"
            "    return got == truth[t]\n"
        )
        cache = tmp_path / "cache.json"
        first = lint_paths([str(src)], cache_path=str(cache))
        assert first.files_from_cache == 0
        second = lint_paths([str(src)], cache_path=str(cache))
        assert second.files_from_cache == 1
        assert [v.rule for v in second.violations] == ["PC003"]
        # An edit invalidates the cached entry for that file.
        src.write_text("x = 1\n")
        third = lint_paths([str(src)], cache_path=str(cache))
        assert third.files_from_cache == 0
        assert not third.violations

    def test_output_formats(self, tmp_path):
        _, rep = lint_snippet(
            tmp_path, "repro/core/fmt.py",
            """\
            def f(index, truth, t):
                got = index.distance(0, t)
                return got == truth[t]
            """,
        )
        assert "PC003" in format_text(rep)
        doc = json.loads(format_json(rep))
        assert doc["violations"][0]["rule"] == "PC003"
        assert "::error file=" in format_github(rep)

    def test_rule_registry_is_complete(self):
        ids = [r.id for r in all_rules()]
        assert ids == [
            "PC001", "PC002", "PC003", "PC004", "PC005", "PC006", "PC012",
        ]


class TestRepositoryIsClean:
    def test_src_lints_clean_with_checked_in_suppressions(self):
        """The acceptance gate: zero unsuppressed violations in src/."""
        sups = load_suppressions(str(REPO_ROOT / ".parapll-lint.json"))
        rep = lint_paths([str(REPO_ROOT / "src")], suppressions=sups)
        assert rep.files_checked > 90
        assert not rep.violations, format_text(rep)
        assert not rep.unused_suppressions
