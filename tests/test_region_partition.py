"""Tests for the locality-aware inter-node partition."""

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.cluster.network import NetworkModel
from repro.cluster.parapll import simulate_cluster
from repro.cluster.partition import region_partition
from repro.errors import SimulationError, TaskError
from repro.graph.order import by_degree

FAST_NET = NetworkModel(latency_units=1, per_entry_units=0.0)


class TestRegionPartition:
    def test_covers_all_vertices_once(self, random_graph):
        order = by_degree(random_graph)
        parts = region_partition(random_graph, order, 3)
        flat = sorted(v for p in parts for v in p)
        assert flat == list(range(random_graph.num_vertices))

    def test_single_node(self, random_graph):
        order = by_degree(random_graph)
        parts = region_partition(random_graph, order, 1)
        assert parts == [[int(v) for v in order]]

    def test_importance_order_within_node(self, random_graph):
        order = by_degree(random_graph)
        rank = {int(v): i for i, v in enumerate(order)}
        parts = region_partition(random_graph, order, 3)
        for part in parts:
            ranks = [rank[v] for v in part]
            assert ranks == sorted(ranks)

    def test_regions_are_roughly_balanced(self, medium_graph):
        order = by_degree(medium_graph)
        parts = region_partition(medium_graph, order, 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) <= 3 * max(1, min(sizes))

    def test_deterministic(self, random_graph):
        order = by_degree(random_graph)
        a = region_partition(random_graph, order, 3, seed=1)
        b = region_partition(random_graph, order, 3, seed=1)
        assert a == b

    def test_handles_disconnected(self, two_components):
        order = by_degree(two_components)
        parts = region_partition(two_components, order, 2)
        flat = sorted(v for p in parts for v in p)
        assert flat == list(range(two_components.num_vertices))

    def test_invalid_nodes(self, random_graph):
        with pytest.raises(TaskError):
            region_partition(random_graph, by_degree(random_graph), 0)


class TestClusterIntegration:
    def test_exact_queries(self, random_graph):
        index, _ = simulate_cluster(
            random_graph, 3, threads_per_node=2, syncs=1,
            network=FAST_NET, inter_node="region",
        )
        truth = dijkstra_sssp(random_graph, 0)
        for t in range(random_graph.num_vertices):
            assert index.distance(0, t) == truth[t]

    def test_region_shrinks_isolated_labels(self, medium_graph):
        rr_idx, _ = simulate_cluster(
            medium_graph, 4, threads_per_node=1, syncs=1,
            network=FAST_NET, inter_node="round-robin",
        )
        rg_idx, _ = simulate_cluster(
            medium_graph, 4, threads_per_node=1, syncs=1,
            network=FAST_NET, inter_node="region",
        )
        assert rg_idx.store.total_entries < rr_idx.store.total_entries

    def test_unknown_partition(self, random_graph):
        with pytest.raises(SimulationError, match="inter_node"):
            simulate_cluster(
                random_graph, 2, inter_node="alphabetical"
            )
