"""Cross-module integration tests: full pipelines on dataset stand-ins."""

import math

import pytest

from repro import PLLIndex, load_dataset
from repro.baselines.bidirectional import bidirectional_dijkstra
from repro.baselines.dijkstra import dijkstra_sssp
from repro.bench.harness import serial_reference
from repro.cluster.network import NetworkModel
from repro.cluster.parapll import simulate_cluster
from repro.core.serial import build_serial
from repro.core.stats import label_cdf, roots_to_reach
from repro.parallel.threads import build_parallel_threads
from repro.sim.executor import simulate_intra_node


@pytest.fixture(scope="module")
def gnutella():
    return load_dataset("Gnutella", scale=0.4, seed=5)


@pytest.fixture(scope="module")
def road():
    return load_dataset("DE-USA", scale=0.3, seed=5)


class TestFullPipelines:
    def test_all_builders_agree_on_queries(self, gnutella):
        """Serial, threaded, simulated, and cluster builds answer alike."""
        g = gnutella
        serial = PLLIndex.build(g)
        threaded = build_parallel_threads(g, 4, policy="dynamic")
        simulated, _ = simulate_intra_node(g, 6, jitter=0.2, seed=1)
        clustered, _ = simulate_cluster(
            g, 3, threads_per_node=2,
            network=NetworkModel(latency_units=1, per_entry_units=0.0),
        )
        for s in (0, 33):
            truth = dijkstra_sssp(g, s)
            for t in range(0, g.num_vertices, 3):
                assert serial.distance(s, t) == truth[t]
                assert threaded.distance(s, t) == truth[t]
                assert simulated.distance(s, t) == truth[t]
                assert clustered.distance(s, t) == truth[t]

    def test_road_network_pipeline(self, road):
        index = PLLIndex.build(road)
        for s in (0, 50):
            truth = dijkstra_sssp(road, s)
            for t in range(0, road.num_vertices, 11):
                assert index.distance(s, t) == truth[t]
                assert bidirectional_dijkstra(road, s, t) == truth[t]

    def test_index_roundtrip_through_disk(self, gnutella, tmp_path):
        index = PLLIndex.build(gnutella)
        p = tmp_path / "gnutella.idx.npz"
        index.save(p)
        loaded = PLLIndex.load(p, graph=gnutella)
        loaded.verify_against_dijkstra([0, 17])


class TestPaperPhenomena:
    """The qualitative claims of the evaluation section, asserted."""

    def test_simulated_speedup_grows(self, gnutella):
        _store, _stats, cost = serial_reference(gnutella)
        times = []
        for p in (1, 4, 12):
            _idx, run = simulate_intra_node(
                gnutella, p, cost_model=cost,
                jitter=0.15, worker_jitter=0.25, seed=2,
            )
            times.append(run.makespan)
        assert times[0] > times[1] > times[2]
        assert times[0] / times[2] > 3.0  # meaningful 12-thread speedup

    def test_one_thread_matches_serial_time_base(self, gnutella):
        """Calibration: simulated 1-thread IT ~ measured serial IT."""
        _store, stats, cost = serial_reference(gnutella)
        _idx, run = simulate_intra_node(gnutella, 1, cost_model=cost)
        assert run.makespan == pytest.approx(
            stats.build_seconds, rel=0.05
        )

    def test_fig6_front_loading(self, gnutella):
        """~90% of labels come from a small prefix of roots."""
        _store, stats = build_serial(gnutella, collect_per_root=True)
        cdf = label_cdf(stats.per_root)
        k90 = roots_to_reach(cdf, 0.9)
        assert k90 < gnutella.num_vertices * 0.5

    def test_cluster_label_growth_bounded_with_early_syncs(self, gnutella):
        serial_store, _ = build_serial(gnutella)
        index, _run = simulate_cluster(
            gnutella, 4, threads_per_node=2, syncs=6,
            sync_schedule="early",
            network=NetworkModel(latency_units=1, per_entry_units=0.0),
        )
        growth = index.store.total_entries / serial_store.total_entries
        assert growth < 3.0

    def test_sync_tradeoff_directions(self, gnutella):
        """Figure 7: label size falls with c; comm time rises with c."""
        net = NetworkModel(latency_units=200.0, per_entry_units=0.05)
        results = {}
        for c in (1, 8):
            index, run = simulate_cluster(
                gnutella, 4, threads_per_node=2, syncs=c, network=net
            )
            results[c] = (index.store.total_entries, run.communication_time)
        assert results[8][0] < results[1][0]
        assert results[8][1] > results[1][1]

    def test_query_faster_than_dijkstra(self, gnutella):
        """The whole point of indexing: sub-linear query cost."""
        import time

        index = PLLIndex.build(gnutella)
        pairs = [(i, (i * 37) % gnutella.num_vertices) for i in range(100)]
        t0 = time.perf_counter()
        for s, t in pairs:
            index.distance(s, t)
        indexed = time.perf_counter() - t0
        t0 = time.perf_counter()
        for s, t in pairs[:10]:
            dijkstra_sssp(gnutella, s)
        online = (time.perf_counter() - t0) * 10
        assert indexed < online

    def test_unreachable_handling_everywhere(self, two_components):
        index = PLLIndex.build(two_components)
        threaded = build_parallel_threads(two_components, 2)
        sim, _ = simulate_intra_node(two_components, 2)
        assert index.distance(0, 2) == math.inf
        assert threaded.distance(0, 2) == math.inf
        assert sim.distance(0, 2) == math.inf
