"""Tests for repro.obs.explain: per-query EXPLAIN attribution."""

import math

import numpy as np
import pytest

from repro.core.index import PLLIndex
from repro.core.paths import isclose_distance
from repro.core.query import query_distance
from repro.errors import GraphError
from repro.generators.random_graphs import gnm_random_graph
from repro.obs.explain import (
    EXPLAIN_SCHEMA,
    HubCandidate,
    QueryExplanation,
    explain_query,
)


@pytest.fixture(scope="module")
def index():
    graph = gnm_random_graph(60, 160, seed=11)
    return PLLIndex.build(graph)


class TestExactness:
    def test_hundred_sampled_pairs_match_query_distance(self, index):
        """Acceptance: EXPLAIN's distance equals the production query
        exactly (same floats, same tie-break) on 100 sampled pairs."""
        rng = np.random.default_rng(123)
        n = index.num_vertices
        for _ in range(100):
            s = int(rng.integers(0, n))
            t = int(rng.integers(0, n))
            explanation = index.explain(s, t)
            assert isclose_distance(
                index.distance(s, t), explanation.distance, atol=0.0
            )

    def test_store_level_matches_too(self, index):
        explanation = explain_query(index.store, 2, 9)
        assert isclose_distance(
            query_distance(index.store, 2, 9),
            explanation.distance,
            atol=0.0,
        )

    def test_winner_matches_query_result_hub(self, index):
        for s, t in [(0, 5), (3, 17), (12, 40)]:
            res = index.query(s, t)
            explanation = index.explain(s, t)
            assert explanation.hub == res.hub
            assert isclose_distance(
                res.distance, explanation.distance, atol=0.0
            )


class TestRoles:
    def test_exactly_one_winner(self, index):
        explanation = index.explain(1, 30)
        winners = [c for c in explanation.candidates if c.role == "winner"]
        assert len(winners) == 1
        assert winners[0].hub_rank == explanation.hub_rank

    def test_winner_has_lowest_rank_among_ties(self, index):
        """Strict < tie-break: the minimal-total hub with lowest rank."""
        for s, t in [(0, 7), (4, 22), (9, 51)]:
            explanation = index.explain(s, t)
            if not explanation.candidates:
                continue
            optimal = [
                c
                for c in explanation.candidates
                if c.role in ("winner", "redundant")
            ]
            assert min(c.hub_rank for c in optimal) == explanation.hub_rank

    def test_redundant_ties_winner_dominated_is_worse(self, index):
        explanation = index.explain(3, 17)
        best = explanation.distance
        for c in explanation.candidates:
            if c.role == "redundant":
                assert isclose_distance(c.total, best)
                assert c.slack == 0.0
            elif c.role == "dominated":
                assert c.total > best
                assert c.slack > 0.0
            else:
                assert c.role == "winner"
                assert c.slack == 0.0

    def test_candidates_sorted_by_hub_rank(self, index):
        explanation = index.explain(5, 44)
        ranks = [c.hub_rank for c in explanation.candidates]
        assert ranks == sorted(ranks)


class TestEdgeCases:
    def test_source_equals_target(self, index):
        explanation = index.explain(6, 6)
        assert explanation.distance == 0.0
        assert explanation.candidates == []
        assert explanation.hub is None
        assert explanation.reachable

    def test_unreachable(self, two_components):
        index = PLLIndex.build(two_components)
        explanation = index.explain(0, 3)
        assert explanation.distance == math.inf
        assert not explanation.reachable
        assert explanation.candidates == []
        assert explanation.hub is None

    def test_out_of_range_vertex_rejected(self, index):
        with pytest.raises(GraphError):
            index.explain(0, index.num_vertices + 5)

    def test_no_order_leaves_hub_ids_none(self, index):
        explanation = explain_query(index.store, 0, 9)
        if explanation.candidates:
            assert all(c.hub is None for c in explanation.candidates)
            assert explanation.hub is None
            assert explanation.hub_rank is not None


class TestSerialization:
    def test_to_dict_schema(self, index):
        doc = index.explain(3, 17).to_dict()
        assert doc["schema"] == EXPLAIN_SCHEMA
        assert set(doc) == {
            "schema",
            "s",
            "t",
            "distance",
            "reachable",
            "hub",
            "hub_rank",
            "candidates",
            "labels",
        }
        assert set(doc["labels"]) == {
            "s_size",
            "t_size",
            "s_scanned",
            "t_scanned",
        }
        for cand in doc["candidates"]:
            assert set(cand) == {
                "hub_rank",
                "hub",
                "d_s",
                "d_t",
                "total",
                "role",
                "slack",
            }

    def test_unreachable_encodes_inf_as_string(self, two_components):
        index = PLLIndex.build(two_components)
        doc = index.explain(0, 3).to_dict()
        assert doc["distance"] == "inf"
        assert doc["reachable"] is False

    def test_json_safe(self, index):
        import json

        text = json.dumps(index.explain(3, 17).to_dict())
        assert json.loads(text)["schema"] == EXPLAIN_SCHEMA

    def test_label_scan_costs_bounded_by_label_sizes(self, index):
        explanation = index.explain(2, 33)
        assert 0 <= explanation.scanned_s <= explanation.label_size_s
        assert 0 <= explanation.scanned_t <= explanation.label_size_t


class TestRender:
    def test_render_reachable(self, index):
        text = index.explain(3, 17).render()
        assert text.startswith("EXPLAIN distance(3, 17)")
        assert "winner" in text
        assert "labels:" in text

    def test_render_trivial(self, index):
        text = index.explain(4, 4).render()
        assert "trivial query" in text

    def test_render_unreachable(self, two_components):
        index = PLLIndex.build(two_components)
        text = index.explain(0, 3).render()
        assert "unreachable" in text
        assert "no common hub" in text

    def test_hub_candidate_dataclass_frozen(self):
        c = HubCandidate(
            hub_rank=0,
            hub=1,
            d_s=1.0,
            d_t=2.0,
            total=3.0,
            role="winner",
            slack=0.0,
        )
        with pytest.raises(AttributeError):
            c.total = 4.0

    def test_explanation_is_frozen(self, index):
        explanation = index.explain(0, 1)
        assert isinstance(explanation, QueryExplanation)
        with pytest.raises(AttributeError):
            explanation.distance = 1.0
