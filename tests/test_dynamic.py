"""Tests for incremental edge insertion (DynamicPLL)."""

import random

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.dynamic import DynamicPLL
from repro.core.index import PLLIndex
from repro.errors import GraphError
from repro.generators.random_graphs import gnm_random_graph

from .conftest import build_graph


def assert_exact(dyn, sources=None):
    graph = dyn.current_graph()
    srcs = sources if sources is not None else range(graph.num_vertices)
    for s in srcs:
        truth = dijkstra_sssp(graph, s)
        for t in range(graph.num_vertices):
            assert dyn.distance(s, t) == truth[t], (s, t)


class TestBasics:
    def test_requires_graph(self, random_graph, tmp_path):
        index = PLLIndex.build(random_graph)
        f = tmp_path / "i.npz"
        index.save(f)
        with pytest.raises(GraphError):
            DynamicPLL(PLLIndex.load(f))

    def test_distance_before_any_insert(self, random_graph):
        dyn = DynamicPLL(PLLIndex.build(random_graph))
        truth = dijkstra_sssp(random_graph, 0)
        for t in range(random_graph.num_vertices):
            assert dyn.distance(0, t) == truth[t]

    def test_current_graph_matches_original(self, random_graph):
        dyn = DynamicPLL(PLLIndex.build(random_graph))
        assert dyn.current_graph() == random_graph


class TestInsertion:
    def test_shortcut_on_path(self, path_graph):
        # Path 0-1-2-3 (weights 1,2,3): add shortcut 0-3 of weight 1.
        dyn = DynamicPLL(PLLIndex.build(path_graph))
        added = dyn.insert_edge(0, 3, 1.0)
        assert added > 0
        assert dyn.distance(0, 3) == 1.0
        assert dyn.distance(1, 3) == 2.0  # via 0 now
        assert_exact(dyn)

    def test_connecting_components(self, two_components):
        dyn = DynamicPLL(PLLIndex.build(two_components))
        assert dyn.distance(0, 2) == float("inf")
        dyn.insert_edge(1, 2, 5.0)
        assert dyn.distance(0, 2) == 6.0
        assert_exact(dyn)

    def test_non_improving_edge(self, triangle):
        # 0-2 already costs 2 via vertex 1; a weight-50 edge 1-... add a
        # parallel-ish heavy edge that changes nothing.
        g = build_graph([(0, 1, 1.0), (1, 2, 1.0)])
        dyn = DynamicPLL(PLLIndex.build(g))
        dyn.insert_edge(0, 2, 50.0)
        assert dyn.distance(0, 2) == 2.0
        assert_exact(dyn)

    def test_sequence_of_random_insertions(self):
        g = gnm_random_graph(35, 60, seed=9)
        dyn = DynamicPLL(PLLIndex.build(g))
        rng = random.Random(4)
        inserted = 0
        while inserted < 12:
            a = rng.randrange(g.num_vertices)
            b = rng.randrange(g.num_vertices)
            try:
                dyn.insert_edge(a, b, float(rng.randint(1, 10)))
            except GraphError:
                continue  # duplicate or self loop; try again
            inserted += 1
            assert_exact(dyn, sources=[a, b, 0])
        assert len(dyn.inserted_edges) == 12
        assert_exact(dyn)

    def test_insert_returns_added_count(self, random_graph):
        dyn = DynamicPLL(PLLIndex.build(random_graph))
        # Find a pair that is not yet an edge.
        a, b = next(
            (a, b)
            for a in range(random_graph.num_vertices)
            for b in range(a + 1, random_graph.num_vertices)
            if not random_graph.has_edge(a, b)
        )
        before = dyn.store.total_entries
        added = dyn.insert_edge(a, b, 0.5)
        assert dyn.store.total_entries == before + added


class TestValidation:
    def test_self_loop(self, path_graph):
        dyn = DynamicPLL(PLLIndex.build(path_graph))
        with pytest.raises(GraphError):
            dyn.insert_edge(1, 1, 1.0)

    def test_duplicate_edge(self, path_graph):
        dyn = DynamicPLL(PLLIndex.build(path_graph))
        with pytest.raises(GraphError, match="exists"):
            dyn.insert_edge(0, 1, 3.0)

    def test_bad_weight(self, path_graph):
        dyn = DynamicPLL(PLLIndex.build(path_graph))
        with pytest.raises(GraphError):
            dyn.insert_edge(0, 2, 0.0)
        with pytest.raises(GraphError):
            dyn.insert_edge(0, 2, float("nan"))

    def test_out_of_range(self, path_graph):
        dyn = DynamicPLL(PLLIndex.build(path_graph))
        with pytest.raises(GraphError):
            dyn.insert_edge(0, 99, 1.0)


class TestRebuild:
    def test_rebuild_restores_canonical(self):
        from repro.validate import check_canonical

        g = gnm_random_graph(30, 50, seed=2)
        dyn = DynamicPLL(PLLIndex.build(g))
        rng = random.Random(1)
        done = 0
        while done < 6:
            a, b = rng.randrange(30), rng.randrange(30)
            try:
                dyn.insert_edge(a, b, float(rng.randint(1, 5)))
                done += 1
            except GraphError:
                pass
        entries_before = dyn.store.total_entries
        dyn.rebuild()
        # Rebuilt index is canonical and no larger than the patched one.
        report = check_canonical(dyn.current_graph(), dyn.store, dyn.order)
        assert report.redundant_entries == 0
        assert dyn.store.total_entries <= entries_before
        assert_exact(dyn)
