"""Tests for the LabelStore."""

import numpy as np
import pytest

from repro.core.labels import LabelStore
from repro.errors import GraphError, NotIndexedError


class TestMutation:
    def test_starts_empty(self):
        store = LabelStore(4)
        assert store.total_entries == 0
        assert store.label_sizes() == [0, 0, 0, 0]
        assert store.avg_label_size == 0.0

    def test_add(self):
        store = LabelStore(3)
        store.add(1, 0, 2.5)
        assert store.label_size(1) == 1
        assert store.entries_of(1) == [(0, 2.5)]
        assert store.hubs_of(1) == [0]
        assert store.dists_of(1) == [2.5]

    def test_add_delta(self):
        store = LabelStore(3)
        n = store.add_delta([(0, 0, 1.0), (1, 0, 2.0), (1, 1, 3.0)])
        assert n == 3
        assert store.total_entries == 3
        assert store.label_size(1) == 2

    def test_avg_label_size(self):
        store = LabelStore(2)
        store.add(0, 0, 1.0)
        store.add(0, 1, 1.0)
        assert store.avg_label_size == 1.0

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            LabelStore(-1)

    def test_empty_store(self):
        store = LabelStore(0)
        assert store.avg_label_size == 0.0
        store.finalize()
        assert store.to_arrays()["indptr"].tolist() == [0]


class TestFinalize:
    def test_requires_finalize(self):
        store = LabelStore(2)
        store.add(0, 0, 1.0)
        with pytest.raises(NotIndexedError):
            store.finalized_hubs(0)
        with pytest.raises(NotIndexedError):
            store.finalized_dists(0)

    def test_sorts_by_hub(self):
        store = LabelStore(1)
        store.add(0, 3, 1.0)
        store.add(0, 1, 2.0)
        store.add(0, 2, 3.0)
        store.finalize()
        assert store.finalized_hubs(0).tolist() == [1, 2, 3]
        assert store.finalized_dists(0).tolist() == [2.0, 3.0, 1.0]

    def test_dedupes_keeping_min_distance(self):
        store = LabelStore(1)
        store.add(0, 5, 9.0)
        store.add(0, 5, 4.0)
        store.finalize()
        assert store.finalized_hubs(0).tolist() == [5]
        assert store.finalized_dists(0).tolist() == [4.0]

    def test_finalize_idempotent(self):
        store = LabelStore(1)
        store.add(0, 0, 1.0)
        store.finalize()
        first = store.finalized_arrays()
        store.finalize()
        second = store.finalized_arrays()
        for a, b in zip(first, second):
            assert a is b

    def test_mutation_invalidates_finalize(self):
        store = LabelStore(1)
        store.add(0, 0, 1.0)
        store.finalize()
        store.add(0, 1, 2.0)
        store.finalize()
        assert store.finalized_hubs(0).tolist() == [0, 1]

    def test_write_order_dists_before_hubs(self):
        """The lock-free-reader invariant: len(dists) >= len(hubs)."""
        store = LabelStore(1)
        # add() appends dist first; simulate interleaving by checking
        # the internal lists after each add.
        for i in range(5):
            store.add(0, i, float(i))
            assert len(store.dists_of(0)) >= len(store.hubs_of(0))


class TestMergeCopy:
    def test_copy_independent(self):
        a = LabelStore(2)
        a.add(0, 0, 1.0)
        b = a.copy()
        b.add(0, 1, 2.0)
        assert a.label_size(0) == 1
        assert b.label_size(0) == 2

    def test_merge_from_unions(self):
        a = LabelStore(2)
        a.add(0, 0, 1.0)
        b = LabelStore(2)
        b.add(0, 1, 2.0)
        b.add(1, 0, 3.0)
        added = a.merge_from(b)
        assert added == 2
        assert a.total_entries == 3

    def test_merge_skips_duplicates(self):
        a = LabelStore(1)
        a.add(0, 0, 1.0)
        b = LabelStore(1)
        b.add(0, 0, 1.0)
        assert a.merge_from(b) == 0
        assert a.total_entries == 1

    def test_merge_size_mismatch(self):
        with pytest.raises(GraphError):
            LabelStore(1).merge_from(LabelStore(2))


class TestSerialisation:
    def test_roundtrip(self):
        store = LabelStore(3)
        store.add(0, 0, 1.0)
        store.add(2, 0, 2.0)
        store.add(2, 1, 3.5)
        arrays = store.to_arrays()
        back = LabelStore.from_arrays(**arrays)
        assert back == store

    def test_roundtrip_applies_dedupe(self):
        store = LabelStore(1)
        store.add(0, 0, 5.0)
        store.add(0, 0, 3.0)
        back = LabelStore.from_arrays(**store.to_arrays())
        assert back.entries_of(0) == [(0, 3.0)]

    def test_from_arrays_validates_indptr(self):
        with pytest.raises(GraphError):
            LabelStore.from_arrays([0, 5], [0], [1.0])

    def test_from_arrays_validates_lengths(self):
        with pytest.raises(GraphError):
            LabelStore.from_arrays([0, 1], [0], [1.0, 2.0])

    def test_from_arrays_rejects_decreasing_indptr(self):
        with pytest.raises(GraphError, match="vertex 1"):
            LabelStore.from_arrays([0, 2, 1, 2], [0, 1], [1.0, 2.0])

    def test_from_arrays_rejects_out_of_range_hub(self):
        with pytest.raises(GraphError, match=r"L\(1\)"):
            LabelStore.from_arrays([0, 1, 2], [0, 7], [1.0, 2.0])

    def test_from_arrays_rejects_unsorted_hubs(self):
        with pytest.raises(GraphError, match="vertex 0.*unsorted"):
            LabelStore.from_arrays([0, 2, 2], [1, 0], [1.0, 2.0])

    def test_from_arrays_rejects_duplicate_hubs(self):
        with pytest.raises(GraphError, match="vertex 2.*duplicated"):
            LabelStore.from_arrays(
                [0, 1, 1, 3], [0, 1, 1], [1.0, 2.0, 2.0]
            )

    def test_from_arrays_validate_false_skips_structure_checks(self):
        store = LabelStore.from_arrays(
            [0, 2, 2], [1, 0], [1.0, 2.0], validate=False
        )
        assert store.finalized_hubs(0).tolist() == [1, 0]

    def test_to_arrays_shapes(self):
        store = LabelStore(2)
        store.add(0, 0, 1.0)
        arrays = store.to_arrays()
        assert arrays["indptr"].tolist() == [0, 1, 1]
        assert arrays["hubs"].dtype == np.int64
        assert arrays["dists"].dtype == np.float64

    def test_to_arrays_is_zero_copy(self):
        store = LabelStore(2)
        store.add(0, 0, 1.0)
        store.add(1, 0, 2.0)
        indptr, hubs, dists = store.finalized_arrays()
        arrays = store.to_arrays()
        assert arrays["indptr"] is indptr
        assert arrays["hubs"] is hubs
        assert arrays["dists"] is dists


class TestFrozenStore:
    """Stores adopted via from_arrays have no Python lists until thawed."""

    def _frozen(self):
        store = LabelStore(3)
        store.add(0, 0, 1.0)
        store.add(2, 0, 2.0)
        store.add(2, 1, 3.5)
        return LabelStore.from_arrays(**store.to_arrays())

    def test_reads_work_frozen(self):
        store = self._frozen()
        assert store.total_entries == 3
        assert store.label_sizes() == [1, 0, 2]
        assert store.label_size(2) == 2
        assert list(store.hubs_of(2)) == [0, 1]
        assert list(store.dists_of(2)) == [2.0, 3.5]
        assert store.entries_of(2) == [(0, 2.0), (1, 3.5)]

    def test_finalized_slices_are_views(self):
        store = self._frozen()
        hubs = store.finalized_hubs(2)
        assert hubs.base is store.finalized_arrays()[1]

    def test_mutation_thaws(self):
        store = self._frozen()
        store.add(1, 0, 4.0)
        assert store.label_size(1) == 1
        store.finalize()
        assert store.finalized_hubs(1).tolist() == [0]
        assert store.finalized_hubs(2).tolist() == [0, 1]

    def test_copy_thaws(self):
        store = self._frozen()
        clone = store.copy()
        clone.add(0, 1, 9.0)
        assert store.label_size(0) == 1
        assert clone.label_size(0) == 2


class TestEquality:
    def test_equal_ignores_order(self):
        a = LabelStore(1)
        a.add(0, 0, 1.0)
        a.add(0, 1, 2.0)
        b = LabelStore(1)
        b.add(0, 1, 2.0)
        b.add(0, 0, 1.0)
        assert a == b

    def test_unequal_distance(self):
        a = LabelStore(1)
        a.add(0, 0, 1.0)
        b = LabelStore(1)
        b.add(0, 0, 2.0)
        assert a != b

    def test_unequal_size(self):
        assert LabelStore(1) != LabelStore(2)

    def test_equal_with_duplicate_hubs_reduced_by_min(self):
        # Delayed-sync duplicates: (hub 2, 3.0) then (hub 2, 5.0).  The
        # semantic label is {2: 3.0}; a naive dict(zip(...)) would keep
        # the *last* distance (5.0) and wrongly report inequality.
        a = LabelStore(3)
        a.add(0, 2, 3.0)
        a.add(0, 2, 5.0)
        b = LabelStore(3)
        b.add(0, 2, 3.0)
        assert a == b

    def test_duplicate_hubs_still_unequal_when_min_differs(self):
        a = LabelStore(3)
        a.add(0, 2, 3.0)
        a.add(0, 2, 5.0)
        b = LabelStore(3)
        b.add(0, 2, 5.0)
        assert a != b

    def test_frozen_equals_mutable(self):
        a = LabelStore(2)
        a.add(0, 0, 1.0)
        a.add(1, 1, 2.0)
        frozen = LabelStore.from_arrays(**a.to_arrays())
        assert frozen == a

    def test_other_type(self):
        assert LabelStore(1).__eq__("x") is NotImplemented


class TestTornAppendFinalize:
    """Regression: finalize during a concurrent lock-free append.

    ``_sort_dedup_flat`` snapshots per-vertex sizes first and copies the
    lists after; a commit landing between the two leaves both lists one
    entry longer than the snapshot.  The committed prefix must be used
    for *both* arrays — the hub list used to be copied unsliced, which
    raised a numpy broadcast error instead of honoring the documented
    commit protocol.
    """

    class _RacyLists:
        """Per-vertex lists that grow between the size snapshot and the
        copy, like a concurrent ``add()`` landing mid-finalize: the
        size-snapshot iteration sees the committed lists, later indexed
        reads see one extra entry."""

        def __init__(self, committed, extra):
            self._committed = committed
            self._extra = extra

        def __len__(self):
            return len(self._committed)

        def __iter__(self):  # the sizes snapshot path
            return iter(self._committed)

        def __getitem__(self, v):  # the copy path, after the "append"
            return self._committed[v] + self._extra[v]

    def test_torn_append_commits_prefix_only(self):
        from repro.core.labels import _sort_dedup_flat

        hub_lists = self._RacyLists(
            committed=[[0], [1]], extra=[[2], []]
        )
        dist_lists = self._RacyLists(
            committed=[[1.0], [2.0]], extra=[[9.0], []]
        )
        indptr, hubs, dists = _sort_dedup_flat(2, hub_lists, dist_lists)
        # Only the committed prefix is finalized; the in-flight entry
        # (hub 2, 9.0) is not torn into the output.
        assert indptr.tolist() == [0, 1, 2]
        assert hubs.tolist() == [0, 1]
        assert dists.tolist() == [1.0, 2.0]


class TestExtendFromArrays:
    def test_bulk_append_matches_add_delta(self):
        a = LabelStore(4)
        a.add_delta([(0, 1, 1.5), (2, 0, 2.5), (0, 3, 3.5)])
        b = LabelStore(4)
        b.extend_from_arrays(
            np.array([0, 2, 0], dtype=np.int64),
            np.array([1, 0, 3], dtype=np.int64),
            np.array([1.5, 2.5, 3.5]),
        )
        assert b == a
        assert b.total_entries == 3

    def test_thaws_frozen_store(self):
        a = LabelStore(2)
        a.add(0, 0, 1.0)
        frozen = LabelStore.from_arrays(**a.to_arrays())
        assert frozen.extend_from_arrays([1], [1], [2.0]) == 1
        assert frozen.label_size(1) == 1
