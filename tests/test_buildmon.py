"""Tests for repro.obs.buildmon: the live build monitor."""

import io
import json

import pytest

from repro.cluster.parapll import simulate_cluster
from repro.cluster.runner import run_cluster_threads
from repro.core.serial import build_serial
from repro.generators.random_graphs import gnm_random_graph
from repro.obs import buildmon
from repro.obs.buildmon import BUILDMON_SCHEMA, BuildMonitor
from repro.obs.flightrec import get_recorder
from repro.parallel.threads import build_parallel_threads
from repro.types import SearchStats


@pytest.fixture(autouse=True)
def clean_state():
    buildmon.uninstall()
    get_recorder().clear()
    yield
    buildmon.uninstall()
    get_recorder().clear()


@pytest.fixture
def graph():
    return gnm_random_graph(60, 160, seed=11)


def _stats(root, settled=10, pruned=4, labels=6):
    return SearchStats(
        root=root, settled=settled, pruned=pruned, labels_added=labels
    )


class TestBuildMonitor:
    def test_counts_and_snapshot(self):
        m = BuildMonitor(total_roots=4, interval_seconds=None)
        m.root_done(0, 7, stats=_stats(7))
        m.root_done(1, 8, stats=_stats(8, settled=20, pruned=15, labels=5))
        snap = m.snapshot()
        assert snap["roots_done"] == 2
        assert snap["total_roots"] == 4
        assert snap["fraction_done"] == pytest.approx(0.5)
        assert snap["labels_total"] == 11
        assert snap["settled_total"] == 30
        assert snap["pruned_total"] == 19
        assert snap["prune_ratio"] == pytest.approx(19 / 30)
        assert snap["label_ratio"] == pytest.approx(11 / 30)
        assert snap["workers"]["0"]["roots"] == 1
        assert snap["workers"]["1"]["roots"] == 1

    def test_labels_without_stats(self):
        m = BuildMonitor(interval_seconds=None)
        m.root_done(0, 1, labels=9)
        assert m.labels_total == 9
        assert m.per_root == []
        assert m.snapshot()["prune_ratio"] == 0.0

    def test_sample_every_controls_emission(self):
        m = BuildMonitor(
            total_roots=100, sample_every=10, interval_seconds=None
        )
        for i in range(35):
            m.root_done(0, i, stats=_stats(i))
        # Snapshots at roots 10, 20, 30 — not per root.
        assert len(m.events) == 3
        assert [e["attrs"]["roots_done"] for e in m.events] == [10, 20, 30]

    def test_final_root_forces_emission(self):
        m = BuildMonitor(
            total_roots=7, sample_every=100, interval_seconds=None
        )
        for i in range(7):
            m.root_done(0, i, stats=_stats(i))
        assert len(m.events) == 1
        assert m.events[-1]["attrs"]["roots_done"] == 7

    def test_eta_and_rates_use_injected_clock(self):
        t = [0.0]
        m = BuildMonitor(
            total_roots=10, interval_seconds=None, clock=lambda: t[0]
        )
        t[0] = 1.0
        for i in range(5):
            m.root_done(0, i, stats=_stats(i, labels=10))
        t[0] = 5.0
        snap = m.snapshot()
        assert snap["elapsed_seconds"] == pytest.approx(5.0)
        assert snap["roots_per_second"] == pytest.approx(1.0)
        assert snap["labels_per_second"] == pytest.approx(10.0)
        assert snap["eta_seconds"] == pytest.approx(5.0)

    def test_stall_detection(self):
        t = [0.0]
        m = BuildMonitor(
            interval_seconds=None,
            stall_seconds=10.0,
            clock=lambda: t[0],
        )
        m.root_done(0, 1, stats=_stats(1))
        m.root_done(1, 2, stats=_stats(2))
        t[0] = 30.0
        m.root_done(0, 3, stats=_stats(3))  # worker 1 idle for 30s
        snap = m.snapshot()
        assert snap["stalled_workers"] == [1]
        # A new commit from worker 1 clears the flag.
        m.root_done(1, 4, stats=_stats(4))
        assert m.snapshot()["stalled_workers"] == []

    def test_all_idle_is_not_a_stall(self):
        t = [0.0]
        m = BuildMonitor(
            interval_seconds=None, stall_seconds=5.0, clock=lambda: t[0]
        )
        m.root_done(0, 1, stats=_stats(1))
        m.root_done(1, 2, stats=_stats(2))
        t[0] = 100.0
        assert m.snapshot()["stalled_workers"] == []

    def test_finish_emits_final_snapshot(self):
        m = BuildMonitor(sample_every=1000, interval_seconds=None)
        m.root_done(0, 1, stats=_stats(1))
        assert m.events == []
        snap = m.finish()
        assert snap["final"] is True
        assert len(m.events) == 1

    def test_note_lands_in_events(self):
        m = BuildMonitor(interval_seconds=None)
        m.note("sync_round", round=0, entries=12)
        assert m.events[-1]["kind"] == "sync_round"
        assert m.events[-1]["attrs"] == {"round": 0, "entries": 12}

    def test_write_jsonl_roundtrip(self, tmp_path):
        m = BuildMonitor(total_roots=3, sample_every=1, interval_seconds=None)
        for i in range(3):
            m.root_done(0, i, stats=_stats(i))
        m.note("sync_round", round=0, entries=5)
        path = tmp_path / "progress.jsonl"
        count = m.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == BUILDMON_SCHEMA
        assert header["events"] == count == len(lines) - 1
        kinds = [json.loads(line)["kind"] for line in lines[1:]]
        assert kinds == ["build_progress"] * 3 + ["sync_round"]

    def test_write_jsonl_to_file_object(self):
        m = BuildMonitor(interval_seconds=None)
        m.finish()
        buf = io.StringIO()
        assert m.write_jsonl(buf) == 1
        assert json.loads(buf.getvalue().splitlines()[0])["kind"] == "header"

    def test_render_mentions_progress_and_stalls(self):
        t = [0.0]
        m = BuildMonitor(
            total_roots=10,
            interval_seconds=None,
            stall_seconds=5.0,
            clock=lambda: t[0],
        )
        m.root_done(0, 1, stats=_stats(1))
        m.root_done(1, 2, stats=_stats(2))
        t[0] = 20.0
        m.root_done(0, 3, stats=_stats(3))
        text = m.render()
        assert "3/10 roots" in text
        assert "STALLED" in text and "worker(s) 1" in text

    def test_sink_receives_snapshots(self):
        seen = []
        m = BuildMonitor(
            sample_every=1, interval_seconds=None, sink=seen.append
        )
        m.root_done(0, 1, stats=_stats(1))
        assert len(seen) == 1 and seen[0]["roots_done"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BuildMonitor(total_roots=-1)
        with pytest.raises(ValueError):
            BuildMonitor(sample_every=0)
        with pytest.raises(ValueError):
            BuildMonitor(stall_seconds=0.0)


class TestInstallation:
    def test_monitored_installs_and_restores(self):
        assert buildmon.active() is None
        outer = BuildMonitor(interval_seconds=None)
        inner = BuildMonitor(interval_seconds=None)
        with buildmon.monitored(outer):
            assert buildmon.active() is outer
            with buildmon.monitored(inner):
                assert buildmon.active() is inner
            assert buildmon.active() is outer
        assert buildmon.active() is None
        # Both monitors got their final snapshot on scope exit.
        assert outer.events[-1]["attrs"]["final"] is True
        assert inner.events[-1]["attrs"]["final"] is True

    def test_report_root_is_noop_without_monitor(self):
        buildmon.report_root(0, 1, stats=_stats(1))  # must not raise
        buildmon.report_note("sync_round", round=0)

    def test_report_root_reaches_installed_monitor(self):
        m = buildmon.install(BuildMonitor(interval_seconds=None))
        buildmon.report_root(2, 9, stats=_stats(9))
        assert m.roots_done == 1 and "2" in m.snapshot()["workers"]
        buildmon.uninstall()
        assert buildmon.active() is None


class TestBuilderWiring:
    def test_serial_build_reports(self, graph):
        m = BuildMonitor(
            total_roots=graph.num_vertices, interval_seconds=None
        )
        with buildmon.monitored(m):
            store, _stats_out = build_serial(graph)
        assert m.roots_done == graph.num_vertices
        assert m.labels_total == store.total_entries
        assert len(m.per_root) == graph.num_vertices
        assert m.events[-1]["attrs"]["final"] is True

    def test_serial_build_unmonitored_collects_nothing(self, graph):
        store, stats = build_serial(graph)
        assert stats.per_root == []

    def test_thread_build_reports(self, graph):
        m = BuildMonitor(
            total_roots=graph.num_vertices, interval_seconds=None
        )
        with buildmon.monitored(m):
            index = build_parallel_threads(graph, 3)
        assert m.roots_done == graph.num_vertices
        assert m.labels_total == index.store.total_entries
        # Per-root stats flow from the workers (not otherwise collected).
        assert len(m.per_root) == graph.num_vertices

    def test_cluster_threads_build_reports(self, graph):
        m = BuildMonitor(
            total_roots=graph.num_vertices, interval_seconds=None
        )
        with buildmon.monitored(m):
            run_cluster_threads(graph, 2, syncs=2)
        assert m.roots_done == graph.num_vertices
        sync_notes = [e for e in m.events if e["kind"] == "sync_round"]
        assert len(sync_notes) == 4  # 2 ranks x 2 rounds

    def test_simulated_cluster_build_reports(self, graph):
        m = BuildMonitor(
            total_roots=graph.num_vertices, interval_seconds=None
        )
        with buildmon.monitored(m):
            simulate_cluster(graph, 2, threads_per_node=2, syncs=2)
        assert m.roots_done == graph.num_vertices
        # Node k's virtual workers report as k*p .. k*p+p-1.
        workers = {int(w) for w in m.snapshot()["workers"]}
        assert workers <= {0, 1, 2, 3} and max(workers) >= 2

    def test_progress_reaches_flight_recorder(self, graph):
        m = BuildMonitor(
            total_roots=graph.num_vertices,
            sample_every=10,
            interval_seconds=None,
        )
        with buildmon.monitored(m):
            build_serial(graph)
        kinds = [e["kind"] for e in get_recorder().snapshot()]
        assert "build_progress" in kinds

    def test_flightrec_dump_includes_progress(self, graph, tmp_path):
        m = BuildMonitor(
            total_roots=graph.num_vertices,
            sample_every=10,
            interval_seconds=None,
        )
        with buildmon.monitored(m):
            build_parallel_threads(graph, 2)
        out = tmp_path / "flight.jsonl"
        get_recorder().dump(str(out), reason="test")
        kinds = [
            json.loads(line)["kind"]
            for line in out.read_text().strip().splitlines()[1:]
        ]
        assert "build_progress" in kinds

    def test_buildmon_gauges_updated(self, graph):
        from repro.obs.instruments import (
            BUILDMON_LABELS_TOTAL,
            BUILDMON_ROOTS_DONE,
        )

        m = BuildMonitor(
            total_roots=graph.num_vertices, interval_seconds=None
        )
        with buildmon.monitored(m):
            build_serial(graph)
        assert BUILDMON_ROOTS_DONE.value() == graph.num_vertices
        assert BUILDMON_LABELS_TOTAL.value() == m.labels_total
