"""Tests for the directed-graph extension package."""

import math
import random

import numpy as np
import pytest

from repro.digraph import (
    DiCSRGraph,
    DiGraphBuilder,
    DirectedPLLIndex,
    dijkstra_backward,
    dijkstra_forward,
)
from repro.errors import GraphError, OrderingError

INF = math.inf


def random_digraph(n, m, seed):
    rng = random.Random(seed)
    b = DiGraphBuilder(num_vertices=n)
    added = 0
    while added < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        b.add_arc(u, v, float(rng.randint(1, 9)))
        added += 1
    return b.build(name=f"rand-{n}-{m}")


@pytest.fixture
def chain():
    """0 -> 1 -> 2 -> 3 (one way only)."""
    b = DiGraphBuilder()
    b.add_arcs([(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
    return b.build()


@pytest.fixture
def digraph():
    return random_digraph(30, 120, seed=3)


class TestBuilder:
    def test_basic(self, chain):
        assert chain.num_vertices == 4
        assert chain.num_arcs == 3

    def test_asymmetry(self, chain):
        assert dijkstra_forward(chain, 0)[3] == 6.0
        assert dijkstra_forward(chain, 3)[0] == INF

    def test_in_adjacency_mirrors_out(self, digraph):
        arcs = {(u, v): w for u, v, w in digraph.arcs()}
        for v in range(digraph.num_vertices):
            for u, w in digraph.in_adjacency()[v]:
                assert arcs[(u, v)] == w

    def test_duplicate_min(self):
        b = DiGraphBuilder()
        b.add_arc(0, 1, 5.0)
        b.add_arc(0, 1, 2.0)
        g = b.build()
        assert dijkstra_forward(g, 0)[1] == 2.0

    def test_duplicate_error_policy(self):
        b = DiGraphBuilder(on_duplicate="error")
        b.add_arc(0, 1, 5.0)
        with pytest.raises(GraphError):
            b.add_arc(0, 1, 2.0)

    def test_antiparallel_arcs_are_distinct(self):
        b = DiGraphBuilder()
        b.add_arc(0, 1, 1.0)
        b.add_arc(1, 0, 7.0)
        g = b.build()
        assert dijkstra_forward(g, 0)[1] == 1.0
        assert dijkstra_forward(g, 1)[0] == 7.0

    def test_self_loops_dropped(self):
        b = DiGraphBuilder()
        b.add_arc(2, 2, 1.0)
        assert b.build().num_arcs == 0

    def test_validation(self):
        b = DiGraphBuilder(num_vertices=3)
        with pytest.raises(GraphError):
            b.add_arc(0, 5, 1.0)
        with pytest.raises(GraphError):
            b.add_arc(0, 1, -1.0)
        with pytest.raises(GraphError):
            b.add_arc(-1, 1, 1.0)

    def test_degrees(self, chain):
        assert chain.out_degrees().tolist() == [1, 1, 1, 0]
        assert chain.in_degrees().tolist() == [0, 1, 1, 1]


class TestDijkstra:
    def test_forward_backward_duality(self, digraph):
        for t in (0, 9, 22):
            back = dijkstra_backward(digraph, t)
            for s in range(digraph.num_vertices):
                assert dijkstra_forward(digraph, s)[t] == back[s]

    def test_invalid_vertex(self, chain):
        with pytest.raises(GraphError):
            dijkstra_forward(chain, 99)


class TestDirectedPLL:
    def test_chain(self, chain):
        idx = DirectedPLLIndex(chain)
        idx.build()
        assert idx.distance(0, 3) == 6.0
        assert idx.distance(3, 0) == INF
        assert idx.distance(1, 1) == 0.0

    def test_matches_dijkstra_everywhere(self, digraph):
        idx = DirectedPLLIndex(digraph)
        idx.build()
        idx.verify_against_dijkstra(range(digraph.num_vertices))

    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_random_digraphs(self, seed):
        g = random_digraph(25, 80, seed=seed)
        idx = DirectedPLLIndex(g)
        idx.build()
        idx.verify_against_dijkstra(range(0, 25, 3))

    def test_cycle(self):
        b = DiGraphBuilder()
        b.add_arcs([(i, (i + 1) % 5, 1.0) for i in range(5)])
        idx = DirectedPLLIndex(b.build())
        idx.build()
        assert idx.distance(0, 4) == 4.0
        assert idx.distance(4, 0) == 1.0

    def test_query_before_build(self, chain):
        idx = DirectedPLLIndex(chain)
        with pytest.raises(GraphError):
            idx.distance(0, 1)

    def test_custom_order(self, digraph):
        order = list(reversed(range(digraph.num_vertices)))
        idx = DirectedPLLIndex(digraph, order=order)
        idx.build()
        idx.verify_against_dijkstra([0, 5])

    def test_invalid_order(self, chain):
        with pytest.raises(OrderingError):
            DirectedPLLIndex(chain, order=[0, 1])

    def test_stats(self, digraph):
        idx = DirectedPLLIndex(digraph)
        stats = idx.build()
        assert stats.n == digraph.num_vertices
        assert stats.total_entries > 0
        assert idx.avg_label_size() > 0

    def test_pruning_smaller_than_full(self, digraph):
        """Labels far smaller than the 2 n^2 unpruned worst case."""
        idx = DirectedPLLIndex(digraph)
        idx.build()
        n = digraph.num_vertices
        assert idx.stats.total_entries < 2 * n * n * 0.8


class TestDiCSRValidation:
    def test_bad_weights(self):
        with pytest.raises(GraphError):
            DiCSRGraph(
                np.array([0, 1]), np.array([0]), np.array([-1.0]),
                np.array([0, 1]), np.array([0]), np.array([-1.0]),
            )

    def test_mismatched_arc_counts(self):
        with pytest.raises(GraphError):
            DiCSRGraph(
                np.array([0, 1, 1]), np.array([1]), np.array([1.0]),
                np.array([0, 0, 0]), np.array([]), np.array([]),
            )
