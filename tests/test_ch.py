"""Tests for the Contraction Hierarchies baseline."""

import math

import pytest

from repro.baselines.ch import ContractionHierarchy
from repro.baselines.dijkstra import dijkstra_sssp
from repro.errors import NotIndexedError
from repro.generators import grid_road_network
from repro.generators.random_graphs import gnm_random_graph


class TestCorrectness:
    def test_path(self, path_graph):
        ch = ContractionHierarchy(path_graph)
        ch.build()
        assert ch.query(0, 3) == 6.0
        assert ch.query(3, 0) == 6.0

    def test_triangle(self, triangle):
        ch = ContractionHierarchy(triangle)
        ch.build()
        assert ch.query(0, 2) == 2.0

    def test_same_vertex(self, random_graph):
        ch = ContractionHierarchy(random_graph)
        ch.build()
        assert ch.query(7, 7) == 0.0

    def test_disconnected(self, two_components):
        ch = ContractionHierarchy(two_components)
        ch.build()
        assert ch.query(0, 3) == math.inf

    def test_all_pairs_match_dijkstra(self, random_graph):
        ch = ContractionHierarchy(random_graph)
        ch.build()
        for s in range(0, random_graph.num_vertices, 4):
            truth = dijkstra_sssp(random_graph, s)
            for t in range(random_graph.num_vertices):
                assert ch.query(s, t) == truth[t], (s, t)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_graphs(self, seed):
        g = gnm_random_graph(30, 70, seed=seed)
        ch = ContractionHierarchy(g)
        ch.build()
        truth = dijkstra_sssp(g, 0)
        for t in range(g.num_vertices):
            assert ch.query(0, t) == truth[t]

    def test_road_network(self):
        g = grid_road_network(8, 8, seed=1)
        ch = ContractionHierarchy(g)
        ch.build()
        for s in (0, 17):
            truth = dijkstra_sssp(g, s)
            for t in range(0, g.num_vertices, 3):
                assert ch.query(s, t) == truth[t]

    def test_tight_witness_limit_still_exact(self, random_graph):
        """Truncated witness searches add shortcuts but never break
        correctness."""
        loose = ContractionHierarchy(random_graph, witness_settle_limit=1)
        loose.build()
        truth = dijkstra_sssp(random_graph, 5)
        for t in range(random_graph.num_vertices):
            assert loose.query(5, t) == truth[t]

    def test_rebuild_resets_shortcuts(self, random_graph):
        ch = ContractionHierarchy(random_graph)
        ch.build()
        first = ch.num_shortcuts
        ch.build()
        assert ch.num_shortcuts == first


class TestStructure:
    def test_query_before_build(self, path_graph):
        ch = ContractionHierarchy(path_graph)
        with pytest.raises(NotIndexedError):
            ch.query(0, 1)
        with pytest.raises(NotIndexedError):
            ch.stats  # noqa: B018

    def test_rank_is_permutation(self, random_graph):
        ch = ContractionHierarchy(random_graph)
        ch.build()
        assert sorted(ch.rank) == list(range(random_graph.num_vertices))

    def test_upward_edges_point_up(self, random_graph):
        ch = ContractionHierarchy(random_graph)
        ch.build()
        for u in range(random_graph.num_vertices):
            for v, _w in ch._up[u]:
                assert ch.rank[v] > ch.rank[u]

    def test_bigger_witness_limit_fewer_shortcuts(self):
        g = grid_road_network(7, 7, seed=0)
        tight = ContractionHierarchy(g, witness_settle_limit=2)
        tight.build()
        generous = ContractionHierarchy(g, witness_settle_limit=256)
        generous.build()
        assert generous.num_shortcuts <= tight.num_shortcuts

    def test_invalid_witness_limit(self, path_graph):
        with pytest.raises(ValueError):
            ContractionHierarchy(path_graph, witness_settle_limit=0)

    def test_stats_populated(self, random_graph):
        ch = ContractionHierarchy(random_graph)
        stats = ch.build()
        assert stats.n == random_graph.num_vertices
        assert stats.build_seconds > 0
        assert stats.total_entries >= random_graph.num_edges
