"""Tests for the Proposition-2 efficiency-loss analysis."""

import pytest

from repro.efficiency import (
    efficiency_loss_study,
    measured_redundancy,
    proposition2_bound,
)
from repro.errors import SimulationError
from repro.graph.order import by_degree


class TestBound:
    def test_serial_has_zero_bound(self, random_graph):
        order = by_degree(random_graph)
        assert proposition2_bound(random_graph, order, 1) == 0.0

    def test_bound_monotone_in_workers(self, random_graph):
        order = by_degree(random_graph)
        bounds = [
            proposition2_bound(random_graph, order, p) for p in (1, 2, 4, 8)
        ]
        for a, b in zip(bounds, bounds[1:]):
            assert b >= a

    def test_bound_normalised(self, random_graph):
        order = by_degree(random_graph)
        b = proposition2_bound(random_graph, order, 4)
        assert 0.0 <= b <= 1.0

    def test_invalid_workers(self, random_graph):
        with pytest.raises(SimulationError):
            proposition2_bound(random_graph, by_degree(random_graph), 0)

    def test_psi_descending_order_minimises_bound(self, random_graph):
        """The ψ-descending sequence has the smallest windowed gaps."""
        from repro.graph.centrality import by_exact_betweenness
        from repro.graph.order import by_random

        good = proposition2_bound(
            random_graph, by_exact_betweenness(random_graph), 4
        )
        import numpy as np

        # Compare against the mean of a few random orders.
        rnd = np.mean(
            [
                proposition2_bound(
                    random_graph, by_random(random_graph, seed=s), 4
                )
                for s in range(3)
            ]
        )
        assert good <= rnd


class TestMeasured:
    def test_serial_no_redundancy(self, random_graph):
        assert measured_redundancy(random_graph, 1) == 0.0

    def test_parallel_nonnegative(self, random_graph):
        r = measured_redundancy(random_graph, 6, seed=1)
        assert r >= 0.0


class TestStudy:
    def test_study_shapes(self, random_graph):
        report = efficiency_loss_study(
            random_graph, workers=(1, 2, 4), seed=0
        )
        assert report.workers == [1, 2, 4]
        assert report.bounds[0] == 0.0
        assert report.redundancy[0] == 0.0
        assert len(report.bounds) == len(report.redundancy) == 3
        # Both grow (weakly) with parallelism.
        assert report.bounds[-1] >= report.bounds[0]
        assert report.redundancy[-1] >= report.redundancy[0]
