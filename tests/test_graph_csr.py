"""Tests for the CSR graph data structure."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

from .conftest import build_graph


def make_raw(indptr, indices, weights):
    return CSRGraph(
        np.asarray(indptr), np.asarray(indices), np.asarray(weights)
    )


class TestConstruction:
    def test_empty_graph(self):
        g = make_raw([0], [], [])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_single_vertex_no_edges(self):
        g = make_raw([0, 0], [], [])
        assert g.num_vertices == 1
        assert g.num_edges == 0
        assert g.degree(0) == 0

    def test_simple_edge(self):
        g = make_raw([0, 1, 2], [1, 0], [2.5, 2.5])
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 2.5

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphError):
            make_raw([1, 2], [0], [1.0])

    def test_indptr_must_end_at_len_indices(self):
        with pytest.raises(GraphError):
            make_raw([0, 1, 3], [1, 0], [1.0, 1.0])

    def test_indptr_must_be_nondecreasing(self):
        with pytest.raises(GraphError):
            make_raw([0, 2, 1, 4], [1, 2, 0, 0], [1.0] * 4)

    def test_odd_arc_count_rejected(self):
        with pytest.raises(GraphError):
            make_raw([0, 1], [0], [1.0])

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(GraphError):
            make_raw([0, 1, 2], [5, 0], [1.0, 1.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            make_raw([0, 1, 2], [1, 0], [-1.0, -1.0])

    def test_zero_weight_rejected(self):
        with pytest.raises(GraphError):
            make_raw([0, 1, 2], [1, 0], [0.0, 0.0])

    def test_infinite_weight_rejected(self):
        with pytest.raises(GraphError):
            make_raw([0, 1, 2], [1, 0], [np.inf, np.inf])

    def test_nan_weight_rejected(self):
        with pytest.raises(GraphError):
            make_raw([0, 1, 2], [1, 0], [np.nan, np.nan])

    def test_mismatched_weights_length(self):
        with pytest.raises(GraphError):
            make_raw([0, 1, 2], [1, 0], [1.0])


class TestAccess:
    def test_neighbors_sorted(self, random_graph):
        for u in range(random_graph.num_vertices):
            nbrs = random_graph.neighbors(u)
            assert np.all(np.diff(nbrs) > 0)

    def test_neighbor_weights_parallel(self, path_graph):
        assert list(path_graph.neighbors(1)) == [0, 2]
        assert list(path_graph.neighbor_weights(1)) == [1.0, 2.0]

    def test_degree_matches_neighbors(self, random_graph):
        for u in range(random_graph.num_vertices):
            assert random_graph.degree(u) == len(random_graph.neighbors(u))

    def test_degrees_array(self, star_graph):
        assert star_graph.degrees.tolist() == [5, 1, 1, 1, 1, 1]

    def test_degree_out_of_range(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.degree(99)

    def test_edges_iterates_each_once(self, random_graph):
        edges = list(random_graph.edges())
        assert len(edges) == random_graph.num_edges
        assert all(u < v for u, v, _ in edges)
        assert len({(u, v) for u, v, _ in edges}) == len(edges)

    def test_adjacency_lists_match_csr(self, random_graph):
        adj = random_graph.adjacency_lists()
        for u in range(random_graph.num_vertices):
            assert [v for v, _ in adj[u]] == list(random_graph.neighbors(u))
            assert [w for _, w in adj[u]] == list(
                random_graph.neighbor_weights(u)
            )

    def test_adjacency_lists_cached(self, path_graph):
        assert path_graph.adjacency_lists() is path_graph.adjacency_lists()

    def test_edge_weight_missing_edge(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.edge_weight(0, 3)

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert path_graph.has_edge(1, 0)
        assert not path_graph.has_edge(0, 2)

    def test_len_is_vertices(self, path_graph):
        assert len(path_graph) == 4


class TestWholeGraph:
    def test_total_weight(self, path_graph):
        assert path_graph.total_weight() == 6.0

    def test_is_connected_true(self, path_graph):
        assert path_graph.is_connected()

    def test_is_connected_false(self, two_components):
        assert not two_components.is_connected()

    def test_empty_is_connected(self):
        assert make_raw([0], [], []).is_connected()

    def test_with_name(self, path_graph):
        g2 = path_graph.with_name("renamed")
        assert g2.name == "renamed"
        assert g2 == path_graph

    def test_reweighted(self, path_graph):
        g2 = path_graph.reweighted(np.ones(path_graph.num_arcs))
        assert g2.total_weight() == path_graph.num_edges

    def test_reweighted_wrong_length(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.reweighted([1.0])

    def test_unit_weighted(self, triangle):
        g2 = triangle.unit_weighted()
        assert g2.edge_weight(0, 2) == 1.0

    def test_equality(self):
        a = build_graph([(0, 1, 2.0)])
        b = build_graph([(0, 1, 2.0)])
        c = build_graph([(0, 1, 3.0)])
        assert a == b
        assert a != c

    def test_equality_other_type(self, path_graph):
        assert path_graph.__eq__(42) is NotImplemented
