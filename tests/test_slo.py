"""Tests for the sliding-window SLO engine (repro.obs.slo)."""

import math

import pytest

from repro import obs
from repro.obs import flightrec as _flightrec
from repro.obs.slo import (
    SLO_SCHEMA,
    SLOTarget,
    SLOTracker,
    SlidingWindowHistogram,
    get_tracker,
)


class FakeClock:
    """A controllable monotonic clock for deterministic window tests."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSLOTarget:
    def test_budget(self):
        target = SLOTarget(
            name="t", objective=0.99, threshold_seconds=0.05
        )
        assert target.budget == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOTarget(name="t", kind="weird", threshold_seconds=0.1)
        with pytest.raises(ValueError):
            SLOTarget(name="t", objective=1.0, threshold_seconds=0.1)
        with pytest.raises(ValueError):
            SLOTarget(name="t", kind="latency")  # missing threshold
        with pytest.raises(ValueError):
            SLOTarget(
                name="t", threshold_seconds=0.1, window_seconds=0
            )


class TestSlidingWindowHistogram:
    def test_window_counts_and_exact_over(self):
        clock = FakeClock()
        hist = SlidingWindowHistogram(
            thresholds=(0.05,), horizon_seconds=120, clock=clock
        )
        for latency in (0.01, 0.02, 0.06, 0.2):
            hist.observe(latency)
        snap = hist.window(10)
        assert snap["count"] == 4
        assert snap["errors"] == 0
        assert snap["over"][repr(0.05)] == 2
        assert snap["sum"] == pytest.approx(0.29)

    def test_old_slots_fall_out_of_window(self):
        clock = FakeClock()
        hist = SlidingWindowHistogram(horizon_seconds=120, clock=clock)
        hist.observe(0.01)
        clock.advance(30)
        hist.observe(0.02)
        assert hist.window(10)["count"] == 1
        assert hist.window(60)["count"] == 2
        assert hist.total_count == 2

    def test_horizon_reuses_slots(self):
        clock = FakeClock()
        hist = SlidingWindowHistogram(horizon_seconds=5, clock=clock)
        hist.observe(0.01)
        clock.advance(7)  # wraps the 5-slot ring past the old second
        hist.observe(0.02)
        assert hist.window(5)["count"] == 1

    def test_window_wider_than_horizon_rejected(self):
        hist = SlidingWindowHistogram(horizon_seconds=10)
        with pytest.raises(ValueError):
            hist.window(11)
        with pytest.raises(ValueError):
            hist.window(0)

    def test_quantile_nan_when_empty(self):
        hist = SlidingWindowHistogram(horizon_seconds=10)
        assert math.isnan(hist.quantile(10, 0.5))

    def test_errors_counted(self):
        clock = FakeClock()
        hist = SlidingWindowHistogram(horizon_seconds=60, clock=clock)
        hist.observe(0.01, ok=False)
        hist.observe(0.01)
        assert hist.window(10)["errors"] == 1
        assert hist.total_errors == 1

    def test_reset(self):
        hist = SlidingWindowHistogram(horizon_seconds=10)
        hist.observe(0.01)
        hist.reset()
        assert hist.window(10)["count"] == 0
        assert hist.total_count == 0


def make_tracker(clock, objective=0.9, threshold=0.05):
    """A tracker with one latency + one availability target, 10% budget."""
    targets = (
        SLOTarget(
            name="latency",
            kind="latency",
            objective=objective,
            threshold_seconds=threshold,
            window_seconds=60,
        ),
        SLOTarget(
            name="availability",
            kind="availability",
            objective=objective,
            window_seconds=60,
        ),
    )
    return SLOTracker(targets=targets, clock=clock)


class TestSLOTracker:
    def test_burn_rate_latency(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(8):
            tracker.record(0.01)
        for _ in range(2):
            tracker.record(0.10)  # over the 50ms threshold
        results = {r["name"]: r for r in tracker.evaluate()}
        lat = results["latency"]
        # 2 bad of 10 -> bad_fraction 0.2; budget 0.1 -> burn 2.0.
        assert lat["bad_requests"] == 2
        assert lat["burn_rate"] == pytest.approx(2.0)
        assert lat["breached"] is True
        assert results["availability"]["burn_rate"] == pytest.approx(0.0)

    def test_errors_count_against_both_kinds(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(19):
            tracker.record(0.01)
        tracker.record(0.01, ok=False)
        results = {r["name"]: r for r in tracker.evaluate()}
        assert results["latency"]["bad_requests"] == 1
        assert results["availability"]["bad_requests"] == 1
        # 1 bad of 20 -> fraction 0.05; budget 0.1 -> burn 0.5, healthy.
        assert results["availability"]["burn_rate"] == pytest.approx(0.5)
        assert results["availability"]["breached"] is False

    def test_empty_window_is_healthy(self):
        tracker = make_tracker(FakeClock())
        for result in tracker.evaluate():
            assert result["burn_rate"] == 0.0
            assert not result["breached"]

    def test_breach_and_recovery_events(self):
        obs.reset()
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(10):
            tracker.record(0.5)  # everything over threshold
        tracker.evaluate()
        events = [
            e["kind"]
            for e in _flightrec.get_recorder().snapshot()
            if e["kind"].startswith("slo_")
        ]
        assert events == ["slo_breach"]
        clock.advance(120)  # bad window slides out entirely
        tracker.evaluate()
        events = [
            e["kind"]
            for e in _flightrec.get_recorder().snapshot()
            if e["kind"].startswith("slo_")
        ]
        assert events == ["slo_breach", "slo_recovered"]

    def test_breach_gauges_exported(self):
        obs.reset()
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(10):
            tracker.record(0.5)
        tracker.evaluate()
        snap = {m["name"]: m for m in obs.get_registry().snapshot()}
        burn = snap["parapll_slo_burn_rate"]
        values = {
            s["labels"]["target"]: s["value"] for s in burn["series"]
        }
        assert values["latency"] == pytest.approx(10.0)
        breaches = snap["parapll_slo_breaches_total"]
        assert sum(s["value"] for s in breaches["series"]) == 1

    def test_worst_burn_rate_cached_then_refreshed(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        assert tracker.worst_burn_rate() == 0.0
        for _ in range(10):
            tracker.record(0.5)
        # Still cached: under max_age_seconds since the last evaluation.
        assert tracker.worst_burn_rate() == 0.0
        clock.advance(2.0)
        assert tracker.worst_burn_rate() == pytest.approx(10.0)

    def test_should_shed(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(10):
            tracker.record(0.5)
        clock.advance(2.0)
        assert tracker.should_shed(1.0)
        assert not tracker.should_shed(100.0)

    def test_windowed_quantiles_labels(self):
        clock = FakeClock()
        tracker = SLOTracker(clock=clock)
        for _ in range(100):
            tracker.record(0.01)
        quantiles = tracker.windowed_quantiles()
        assert set(quantiles) == {"10s", "1m", "5m"}
        assert set(quantiles["1m"]) == {"p50", "p95", "p99"}

    def test_windowed_quantiles_empty_windows_omitted(self):
        clock = FakeClock()
        tracker = SLOTracker(clock=clock)
        tracker.record(0.01)
        clock.advance(30)  # now outside 10s but inside 1m/5m
        assert set(tracker.windowed_quantiles()) == {"1m", "5m"}

    def test_status_document(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(10):
            tracker.record(0.5)
        status = tracker.status()
        assert status["schema"] == SLO_SCHEMA
        assert status["breached"] == ["latency"]
        assert status["worst_burn_rate"] == pytest.approx(10.0)
        assert status["requests_total"] == 10
        names = [t["name"] for t in status["targets"]]
        assert names == ["latency", "availability"]

    def test_reset_clears_breach_state(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(10):
            tracker.record(0.5)
        tracker.evaluate()
        tracker.reset()
        status = tracker.status()
        assert status["breached"] == []
        assert status["requests_total"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SLOTracker(targets=())
        duplicate = SLOTarget(name="x", threshold_seconds=0.1)
        with pytest.raises(ValueError):
            SLOTracker(targets=(duplicate, duplicate))

    def test_default_tracker_reset_via_obs(self):
        get_tracker().record(0.01)
        obs.reset()
        assert get_tracker().histogram.total_count == 0
