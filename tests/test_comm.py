"""Tests for the simulated MPI communicator."""

import pytest

from repro.cluster.comm import SimComm
from repro.cluster.network import NetworkModel
from repro.errors import CommError


def make_comm(size=3, latency=1.0, per_entry=0.5):
    return SimComm(
        size,
        network=NetworkModel(latency_units=latency, per_entry_units=per_entry),
        seconds_per_unit=1.0,
    )


class TestBasics:
    def test_invalid_size(self):
        with pytest.raises(CommError):
            SimComm(0)

    def test_invalid_spu(self):
        with pytest.raises(CommError):
            SimComm(2, seconds_per_unit=0.0)

    def test_clocks_start_zero(self):
        comm = make_comm()
        assert comm.clocks == [0.0, 0.0, 0.0]

    def test_set_clock(self):
        comm = make_comm()
        comm.set_clock(1, 5.0)
        assert comm.clocks[1] == 5.0

    def test_clock_backwards_rejected(self):
        comm = make_comm()
        comm.set_clock(1, 5.0)
        with pytest.raises(CommError):
            comm.set_clock(1, 1.0)

    def test_rank_range(self):
        comm = make_comm()
        with pytest.raises(CommError):
            comm.set_clock(7, 1.0)


class TestPointToPoint:
    def test_send_recv_payload(self):
        comm = make_comm()
        comm.send([1, 2, 3], source=0, dest=1)
        assert comm.recv(source=0, dest=1) == [1, 2, 3]

    def test_send_advances_sender_clock(self):
        comm = make_comm(latency=2.0, per_entry=1.0)
        comm.send([0, 0], source=0, dest=1)  # 2 + 2*1 = 4 units
        assert comm.clocks[0] == 4.0
        assert comm.comm_seconds[0] == 4.0

    def test_recv_waits_for_arrival(self):
        comm = make_comm(latency=2.0, per_entry=1.0)
        comm.send([0], source=0, dest=1)
        comm.recv(source=0, dest=1)
        assert comm.clocks[1] == comm.clocks[0]

    def test_recv_no_wait_if_late(self):
        comm = make_comm(latency=1.0, per_entry=0.0)
        comm.send("x", source=0, dest=1)
        comm.set_clock(1, 100.0)
        comm.recv(source=0, dest=1)
        assert comm.clocks[1] == 100.0

    def test_recv_missing_message(self):
        comm = make_comm()
        with pytest.raises(CommError):
            comm.recv(source=0, dest=1)

    def test_fifo_per_channel(self):
        comm = make_comm()
        comm.send("a", 0, 1, tag=9)
        comm.send("b", 0, 1, tag=9)
        assert comm.recv(0, 1, tag=9) == "a"
        assert comm.recv(0, 1, tag=9) == "b"

    def test_tags_are_separate_channels(self):
        comm = make_comm()
        comm.send("t1", 0, 1, tag=1)
        comm.send("t2", 0, 1, tag=2)
        assert comm.recv(0, 1, tag=2) == "t2"


class TestBarrier:
    def test_returns_none_until_complete(self):
        comm = make_comm(3)
        assert comm.barrier(0) is None
        assert comm.barrier(1) is None
        assert comm.barrier(2) is not None

    def test_aligns_clocks_to_max(self):
        comm = make_comm(2)
        comm.set_clock(0, 3.0)
        comm.set_clock(1, 7.0)
        comm.barrier(0)
        exit_time = comm.barrier(1)
        assert exit_time == 7.0
        assert comm.clocks == [7.0, 7.0]
        assert comm.comm_seconds[0] == 4.0

    def test_double_join_rejected(self):
        comm = make_comm(2)
        comm.barrier(0)
        with pytest.raises(CommError):
            comm.barrier(0)

    def test_reusable_after_completion(self):
        comm = make_comm(2)
        comm.barrier(0)
        comm.barrier(1)
        assert comm.barrier(1) is None
        assert comm.barrier(0) is not None


class TestAllgather:
    def test_gathers_in_rank_order(self):
        comm = make_comm(3, latency=0.0, per_entry=0.0)
        assert comm.allgather(2, "c") is None
        assert comm.allgather(0, "a") is None
        assert comm.allgather(1, "b") == ["a", "b", "c"]
        assert comm.collective_result() == ["a", "b", "c"]

    def test_charges_exchange_time(self):
        comm = make_comm(2, latency=3.0, per_entry=1.0)
        comm.allgather(0, [1, 2])
        comm.allgather(1, [3])
        # (3 + 2) + (3 + 1) = 9 units, 1 stage.
        assert comm.clocks == [9.0, 9.0]

    def test_starts_from_slowest_rank(self):
        comm = make_comm(2, latency=1.0, per_entry=0.0)
        comm.set_clock(0, 10.0)
        comm.allgather(0, [])
        comm.allgather(1, [])
        assert comm.clocks[0] == comm.clocks[1] == 12.0

    def test_double_join_rejected(self):
        comm = make_comm(2)
        comm.allgather(0, [])
        with pytest.raises(CommError):
            comm.allgather(0, [])

    def test_collective_result_before_any(self):
        comm = make_comm(2)
        with pytest.raises(CommError):
            comm.collective_result()


class TestBcast:
    def test_delivers_to_all(self):
        comm = make_comm(3, latency=0.0, per_entry=0.0)
        out = comm.bcast([1, 2], root=0)
        assert out == [[1, 2]] * 3

    def test_charges_broadcast_time(self):
        comm = make_comm(4, latency=1.0, per_entry=1.0)
        comm.bcast([7, 8, 9], root=2)
        # (1 + 3) * 2 stages = 8 units.
        assert comm.clocks == [8.0] * 4

    def test_total_comm_seconds(self):
        comm = make_comm(2, latency=1.0, per_entry=0.0)
        comm.bcast("x", root=0)
        assert comm.total_comm_seconds == sum(comm.comm_seconds)
