"""Tests for the benchmark harness, formatters and CLI runner."""

import pytest

from repro.bench.figures import (
    ascii_cdf,
    ascii_loglog_histogram,
    format_fig5,
    format_fig6,
    format_fig7,
)
from repro.bench.harness import (
    BenchConfig,
    experiment_datasets,
    experiment_fig5,
    experiment_fig6,
    experiment_fig7,
    experiment_headline,
    experiment_table34,
    experiment_table5,
)
from repro.bench.runner import main as runner_main
from repro.bench.tables import (
    format_headline,
    format_speedup_table,
    format_table2,
    format_table5,
    write_csv,
)
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def tiny_config():
    """A configuration small enough for unit tests."""
    return BenchConfig(
        scale=0.15,
        seed=1,
        datasets=("Wiki-Vote", "Gnutella"),
        workers=(1, 2, 4),
        nodes=(1, 2, 3),
        threads_per_node=2,
        fig7_syncs=(1, 2, 4),
        fig7_datasets=("Gnutella",),
        verify_samples=1,
    )


class TestConfig:
    def test_graph_cached(self, tiny_config):
        assert tiny_config.graph("Gnutella") is tiny_config.graph("Gnutella")

    def test_reference_cached(self, tiny_config):
        a = tiny_config.reference("Gnutella")
        b = tiny_config.reference("Gnutella")
        assert a is b

    def test_unknown_dataset(self, tiny_config):
        with pytest.raises(BenchmarkError):
            tiny_config.graph("NopeNet")


class TestExperiments:
    def test_datasets(self, tiny_config):
        rows = experiment_datasets(tiny_config)
        assert len(rows) == 2
        assert rows[0]["dataset"] == "Wiki-Vote"
        assert rows[0]["paper_n"] == 7115
        assert rows[0]["n"] > 0

    def test_fig5(self, tiny_config):
        hists = experiment_fig5(tiny_config)
        assert set(hists) == {"Wiki-Vote", "Gnutella"}
        g = tiny_config.graph("Gnutella")
        assert sum(hists["Gnutella"].values()) == g.num_vertices

    @pytest.mark.parametrize("policy", ["static", "dynamic"])
    def test_table34(self, tiny_config, policy):
        rows = experiment_table34(tiny_config, policy)
        for row in rows:
            assert row["speedups"][0] == 1.0
            assert len(row["speedups"]) == 3
            assert all(s > 0 for s in row["speedups"])
            assert row["pll_seconds"] > 0
            # The simulated 1-thread label size equals serial PLL's.
            assert row["label_sizes"][0] == pytest.approx(row["pll_ln"])

    def test_table5(self, tiny_config):
        rows = experiment_table5(tiny_config)
        for row in rows:
            assert row["static_speedups"][0] == 1.0
            assert row["dynamic_speedups"][0] == 1.0
            # Label sizes grow (weakly) with cluster size.
            ln = row["dynamic_label_sizes"]
            assert ln[-1] >= ln[0]

    def test_fig6(self, tiny_config):
        curves = experiment_fig6(tiny_config, p=2)
        assert "PLL (serial)" in curves
        assert len(curves) == 3
        for curve in curves.values():
            assert curve[-1] == pytest.approx(1.0)

    def test_fig7(self, tiny_config):
        rows = experiment_fig7(tiny_config)
        assert len(rows) == 3  # one dataset x three sync counts
        by_c = {r["syncs"]: r for r in rows}
        assert by_c[4]["label_size"] <= by_c[1]["label_size"]
        assert by_c[4]["communication"] >= by_c[1]["communication"]

    def test_headline(self, tiny_config):
        result = experiment_headline(tiny_config)
        assert result["intra_speedup"] > 1.0
        assert result["serial_seconds"] > 0


class TestFormatters:
    def test_table2(self, tiny_config):
        text = format_table2(experiment_datasets(tiny_config))
        assert "Wiki-Vote" in text
        assert "7,115" in text

    def test_speedup_table(self, tiny_config):
        rows = experiment_table34(tiny_config, "dynamic")
        text = format_speedup_table(rows, "Table 4")
        assert "Table 4" in text
        assert "SP@2" in text
        assert "Gnutella" in text

    def test_speedup_table_empty(self):
        assert "(no rows)" in format_speedup_table([], "T")

    def test_table5_format(self, tiny_config):
        rows = experiment_table5(tiny_config)
        text = format_table5(rows, "Table 5")
        assert "dSP@2" in text

    def test_headline_format(self):
        text = format_headline(
            {
                "dataset": "Skitter",
                "serial_seconds": 2.0,
                "threads": 12,
                "intra_speedup": 7.5,
                "cluster_nodes": 6,
                "cluster_speedup": 1.9,
            }
        )
        assert "Skitter" in text and "x7.50" in text

    def test_ascii_histogram(self):
        art = ascii_loglog_histogram({1: 100, 2: 50, 10: 3})
        assert "*" in art

    def test_ascii_histogram_empty(self):
        assert "empty" in ascii_loglog_histogram({})

    def test_ascii_cdf(self):
        art = ascii_cdf({"a": [0.2, 0.6, 1.0]})
        assert "o = a" in art

    def test_fig_formatters(self, tiny_config):
        assert "Figure 5" in format_fig5(experiment_fig5(tiny_config))
        assert "Figure 6" in format_fig6(
            experiment_fig6(tiny_config, p=2), "Wiki-Vote"
        )
        assert "Figure 7" in format_fig7(experiment_fig7(tiny_config))

    def test_write_csv(self, tmp_path, tiny_config):
        rows = experiment_datasets(tiny_config)
        path = tmp_path / "out.csv"
        write_csv(rows, path)
        content = path.read_text()
        assert "dataset" in content.splitlines()[0]
        assert len(content.splitlines()) == 3

    def test_write_csv_flattens_lists(self, tmp_path):
        path = tmp_path / "x.csv"
        write_csv([{"a": [1, 2, 3]}], path)
        assert "1;2;3" in path.read_text()

    def test_write_csv_empty(self, tmp_path):
        write_csv([], tmp_path / "none.csv")
        assert not (tmp_path / "none.csv").exists()


class TestRunner:
    def test_single_experiment(self, capsys, tmp_path):
        code = runner_main(
            [
                "--experiment",
                "datasets",
                "--scale",
                "0.15",
                "--datasets",
                "Gnutella",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Gnutella" in out
        assert (tmp_path / "datasets.csv").exists()

    def test_unknown_dataset(self, capsys):
        code = runner_main(
            ["--experiment", "datasets", "--datasets", "Nope"]
        )
        assert code == 2

    def test_table5_partition_flag(self, capsys):
        code = runner_main(
            [
                "--experiment",
                "table5",
                "--scale",
                "0.12",
                "--datasets",
                "Gnutella",
                "--partition",
                "region",
                "--syncs",
                "2",
            ]
        )
        assert code == 0
        assert "Table 5" in capsys.readouterr().out

    def test_fig6_runs(self, capsys):
        code = runner_main(
            [
                "--experiment",
                "fig6",
                "--scale",
                "0.15",
                "--datasets",
                "Gnutella",
            ]
        )
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out


class TestEnvironmentStamping:
    def test_out_dir_results_stamped(self, tmp_path):
        import json

        code = runner_main(
            [
                "--experiment",
                "datasets",
                "--scale",
                "0.15",
                "--datasets",
                "Gnutella",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        metrics_doc = json.loads(
            (tmp_path / "datasets.metrics.json").read_text()
        )
        assert metrics_doc["schema"] == "parapll-metrics/2"
        assert metrics_doc["experiment"] == "datasets"
        assert metrics_doc["elapsed_seconds"] > 0
        env = metrics_doc["environment"]
        for key in (
            "python",
            "platform",
            "machine",
            "cpu_count",
            "git_sha",
            "timestamp_utc",
        ):
            assert key in env
        # The per-directory stamp matches the embedded one (bar time).
        env_file = json.loads((tmp_path / "environment.json").read_text())
        assert env_file["python"] == env["python"]
        assert env_file["platform"] == env["platform"]

    def test_snapshot_document_shape(self):
        from repro.bench.harness import snapshot_document

        doc = snapshot_document("unit", elapsed_seconds=1.5)
        assert doc["schema"] == "parapll-metrics/2"
        assert doc["experiment"] == "unit"
        assert doc["elapsed_seconds"] == 1.5
        assert isinstance(doc["metrics"], list)
        assert "environment" in doc

    def test_snapshot_document_elapsed_optional(self):
        from repro.bench.harness import snapshot_document

        doc = snapshot_document("unit")
        assert "elapsed_seconds" not in doc
