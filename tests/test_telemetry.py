"""Tests for the cross-process telemetry plane (repro.obs.bus/relay).

Covers the bus (bounded, non-blocking, explicit drops), the metrics
delta encoder, the histogram-merge property (merging N per-process
snapshots equals observing the concatenated stream in one registry),
the in-process and two-process relay merge semantics, the failure
modes (dead collector, partial frame, frames before header) and the
``parapll dash`` / ``parapll obs`` surfaces.
"""

import json
import multiprocessing
import os
import random
import socket
import time

import pytest

from repro import obs
from repro.obs import bus as bus_mod
from repro.obs.bus import (
    DEFAULT_CAPACITY,
    FRAME_KINDS,
    TELEMETRY_SCHEMA,
    MetricsDelta,
    TelemetryBus,
)
from repro.obs.metrics import (
    MetricsRegistry,
    ObsError,
    histogram_bucket_counts,
    histogram_quantile,
    merge_histogram_snapshot,
)
from repro.obs.relay import Collector, RelayClient, render_fleet

BOUNDS = (0.1, 1.0, 10.0)


@pytest.fixture(autouse=True)
def _clean_bus():
    bus_mod.uninstall()
    yield
    bus_mod.uninstall()


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def wait_disconnected(collector, sources=1, timeout=10.0):
    """Wait until *sources* relay streams have fully drained (EOF seen)."""
    def done():
        stats = collector.stats()
        return len(stats["sources"]) >= sources and not any(
            s["connected"] for s in stats["sources"].values()
        )

    assert wait_until(done, timeout=timeout), collector.stats()


def merged_value(registry, name, labels=None):
    want = {k: str(v) for k, v in (labels or {}).items()}
    for metric in registry.snapshot():
        if metric["name"] != name:
            continue
        for series in metric["series"]:
            if series["labels"] == want:
                return series["value"]
    return None


class TestTelemetryBus:
    def test_publish_drain_roundtrip(self):
        bus = TelemetryBus()
        assert bus.publish("events", {"name": "a"})
        assert bus.publish("metrics", [{"name": "x"}])
        frames = bus.drain()
        assert [f["kind"] for f in frames] == ["events", "metrics"]
        assert [f["seq"] for f in frames] == [1, 2]
        for frame in frames:
            assert frame["ts"] > 0 and frame["mono"] > 0
        assert bus.drain() == []
        assert bus.published == 2

    def test_full_bus_drops_and_counts_per_kind(self):
        bus = TelemetryBus(capacity=2)
        assert bus.publish("events", 1)
        assert bus.publish("events", 2)
        assert not bus.publish("events", 3)
        assert not bus.publish("spans", [])
        assert bus.dropped == {"events": 1, "spans": 1}
        assert bus.total_dropped() == 2
        # Draining frees capacity; drop counters are cumulative.
        assert len(bus.drain()) == 2
        assert bus.publish("events", 4)
        assert bus.dropped == {"events": 1, "spans": 1}

    def test_lag_high_watermark_uses_monotonic(self, monkeypatch):
        bus = TelemetryBus()
        bus.publish("events", 1)
        # Step the wall clock a year backwards: lag must not explode
        # (or go negative), because it is derived from mono only.
        monkeypatch.setattr(time, "time", lambda: 1.0)
        time.sleep(0.02)
        bus.drain()
        assert 0.0 <= bus.max_lag_seconds < 5.0

    def test_header_identifies_process(self):
        bus = TelemetryBus(capacity=7)
        header = bus.header(rank=3)
        assert header["kind"] == "header"
        assert header["schema"] == TELEMETRY_SCHEMA
        assert header["pid"] == os.getpid()
        assert header["rank"] == 3 and header["capacity"] == 7

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TelemetryBus(capacity=0)

    def test_publish_event_hook(self):
        bus_mod.publish_event("noop", x=1)  # no bus installed: no-op
        bus = bus_mod.install(TelemetryBus())
        bus_mod.publish_event("root_commit", worker=2, root=5)
        frames = bus.drain()
        assert len(frames) == 1
        payload = frames[0]["payload"]
        assert payload["name"] == "root_commit"
        assert payload["attrs"] == {"worker": 2, "root": 5}
        assert payload["thread"]
        bus_mod.uninstall()
        bus_mod.publish_event("after", x=1)
        assert bus.drain() == []


class TestMetricsDelta:
    def test_counter_deltas_and_reset_detection(self):
        reg = MetricsRegistry()
        ctr = reg.counter("d_total", "d")
        delta = MetricsDelta(reg)
        ctr.inc(5)
        # First collection ships the full cumulative value.
        (entry,) = delta.collect()
        assert entry["kind"] == "counter" and entry["delta"] == 5.0
        ctr.inc(2)
        (entry,) = delta.collect()
        assert entry["delta"] == 2.0
        assert delta.collect() == []  # unchanged series are skipped
        reg.reset()
        ctr.inc(3)
        (entry,) = delta.collect()
        assert entry["delta"] == 3.0  # post-reset value, not negative

    def test_gauge_ships_value_on_change_only(self):
        reg = MetricsRegistry()
        g = reg.gauge("d_gauge", "d")
        delta = MetricsDelta(reg)
        g.set(1.5)
        (entry,) = delta.collect()
        assert entry["kind"] == "gauge" and entry["value"] == 1.5
        assert delta.collect() == []
        g.set(2.5)
        (entry,) = delta.collect()
        assert entry["value"] == 2.5

    def test_histogram_bucket_deltas(self):
        reg = MetricsRegistry()
        h = reg.histogram("d_hist", "d", buckets=BOUNDS)
        delta = MetricsDelta(reg)
        h.observe(0.05)
        h.observe(5.0)
        (entry,) = delta.collect()
        d = entry["delta"]
        assert d["bounds"] == list(BOUNDS)
        assert d["counts"] == [1, 0, 1, 0]  # per-bucket, +Inf last
        assert d["count"] == 2 and d["sum"] == pytest.approx(5.05)
        h.observe(100.0)  # beyond the top bound -> +Inf bucket
        (entry,) = delta.collect()
        assert entry["delta"]["counts"] == [0, 0, 0, 1]
        reg.reset()
        h.observe(0.5)
        (entry,) = delta.collect()
        assert entry["delta"]["counts"] == [0, 1, 0, 0]

    def test_labeled_series_carry_labels(self):
        reg = MetricsRegistry()
        ctr = reg.counter("d_ops_total", "d", labels=("op",))
        ctr.labels(op="a").inc(1)
        ctr.labels(op="b").inc(2)
        delta = MetricsDelta(reg)
        entries = {e["labels"]["op"]: e["delta"] for e in delta.collect()}
        assert entries == {"a": 1.0, "b": 2.0}


class TestHistogramMergeProperty:
    """Satellite: merging N per-process snapshots == one registry."""

    N_SOURCES = 4
    PER_SOURCE = 250

    def _streams(self):
        rng = random.Random(20260808)
        # Log-uniform values spanning below, across and beyond the
        # bucket bounds (so the +Inf bucket is exercised).
        return [
            [10.0 ** rng.uniform(-3, 3) for _ in range(self.PER_SOURCE)]
            for _ in range(self.N_SOURCES)
        ]

    def test_merge_equals_concatenated_stream(self):
        streams = self._streams()
        # N "processes", one histogram each.
        snapshots = []
        for stream in streams:
            reg = MetricsRegistry()
            h = reg.histogram("m_hist", "m", buckets=BOUNDS)
            for value in stream:
                h.observe(value)
            snapshots.append(h.value())
        # The reference: one registry observing the concatenation.
        ref_reg = MetricsRegistry()
        ref = ref_reg.histogram("m_hist", "m", buckets=BOUNDS)
        for stream in streams:
            for value in stream:
                ref.observe(value)
        # The merge under test.
        merged_reg = MetricsRegistry()
        merged = merged_reg.histogram("m_hist", "m", buckets=BOUNDS)
        for snap in snapshots:
            merge_histogram_snapshot(merged, snap)

        got, want = merged.value(), ref.value()
        assert got["count"] == want["count"] == (
            self.N_SOURCES * self.PER_SOURCE
        )
        assert got["buckets"] == want["buckets"]  # cumulative, exact
        assert got["buckets"][-1][0] == "+Inf"
        assert got["buckets"][-1][1] == got["count"]
        assert got["sum"] == pytest.approx(want["sum"], rel=1e-12)
        # Quantiles agree to bucket resolution: both are reconstructed
        # from identical bucket counts, so they agree exactly.
        for q in (0.5, 0.9, 0.95, 0.99):
            assert histogram_quantile(got, q) == histogram_quantile(
                want, q
            )

    def test_merge_is_order_independent(self):
        streams = self._streams()
        snapshots = []
        for stream in streams:
            reg = MetricsRegistry()
            h = reg.histogram("m_hist", "m", buckets=BOUNDS)
            for value in stream:
                h.observe(value)
            snapshots.append(h.value())
        forward = MetricsRegistry().histogram("m", "m", buckets=BOUNDS)
        backward = MetricsRegistry().histogram("m", "m", buckets=BOUNDS)
        for snap in snapshots:
            merge_histogram_snapshot(forward, snap)
        for snap in reversed(snapshots):
            merge_histogram_snapshot(backward, snap)
        assert forward.value()["buckets"] == backward.value()["buckets"]
        assert forward.value()["sum"] == pytest.approx(
            backward.value()["sum"], rel=1e-12
        )

    def test_labeled_series_merge_per_label(self):
        source = MetricsRegistry().histogram(
            "m_hist", "m", buckets=BOUNDS, labels=("op",)
        )
        source.labels(op="a").observe(0.5)
        source.labels(op="a").observe(2.0)
        source.labels(op="b").observe(50.0)
        target = MetricsRegistry().histogram(
            "m_hist", "m", buckets=BOUNDS, labels=("op",)
        )
        for _key, series in source.series_items():
            labels = dict(zip(source.label_names, _key))
            merge_histogram_snapshot(
                target.labels(**labels), series.value()
            )
        assert target.labels(op="a").value()["count"] == 2
        assert target.labels(op="b").value()["count"] == 1
        assert target.labels(op="b").value()["buckets"][-1][1] == 1

    def test_bounds_mismatch_rejected(self):
        a = MetricsRegistry().histogram("m", "m", buckets=BOUNDS)
        b = MetricsRegistry().histogram("m", "m", buckets=(1.0, 2.0))
        b.observe(1.5)
        with pytest.raises(ObsError):
            merge_histogram_snapshot(a, b.value())

    def test_bucket_counts_invert_cumulative(self):
        h = MetricsRegistry().histogram("m", "m", buckets=BOUNDS)
        for value in (0.05, 0.5, 0.5, 5.0, 500.0):
            h.observe(value)
        assert histogram_bucket_counts(h.value()) == [1, 2, 1, 1]


class TestRelayInProcess:
    """Client + collector in one process, on private registries.

    The collector must merge into a registry the clients do *not* diff
    — otherwise every merged increment would be re-shipped forever (the
    feedback loop documented in repro.obs.relay).
    """

    def _client(self, collector, rank, registry):
        return RelayClient(
            collector.host,
            collector.port,
            rank=rank,
            registry=registry,
            bus=TelemetryBus(),
            install_bus=False,
            flush_interval=0.05,
        )

    def test_counters_sum_across_sources(self):
        with Collector(registry=MetricsRegistry()) as collector:
            regs = [MetricsRegistry(), MetricsRegistry()]
            for rank, reg in enumerate(regs):
                reg.counter("fleet_total", "f").inc(100 + rank)
                reg.counter("fleet_ops_total", "f", labels=("op",)).labels(
                    op="q"
                ).inc(10 * (rank + 1))
                client = self._client(collector, rank, reg)
                client.close()
            wait_disconnected(collector, sources=2)
            assert merged_value(collector.registry, "fleet_total") == 201.0
            assert (
                merged_value(
                    collector.registry, "fleet_ops_total", {"op": "q"}
                )
                == 30.0
            )
            stats = collector.stats()
            assert stats["dropped"] == 0 and stats["malformed"] == 0
            assert stats["merge_errors"] == 0

    def test_histogram_merge_matches_single_registry(self):
        rng = random.Random(7)
        streams = [
            [10.0 ** rng.uniform(-3, 3) for _ in range(200)]
            for _ in range(2)
        ]
        ref = MetricsRegistry().histogram("fleet_lat", "f", buckets=BOUNDS)
        with Collector(registry=MetricsRegistry()) as collector:
            for rank, stream in enumerate(streams):
                reg = MetricsRegistry()
                h = reg.histogram("fleet_lat", "f", buckets=BOUNDS)
                for value in stream:
                    h.observe(value)
                    ref.observe(value)
                client = self._client(collector, rank, reg)
                client.close()
            wait_disconnected(collector, sources=2)
            got = merged_value(collector.registry, "fleet_lat")
            want = ref.value()
            assert got["count"] == want["count"] == 400
            assert got["buckets"] == want["buckets"]
            assert got["sum"] == pytest.approx(want["sum"], rel=1e-9)
            for q in (0.5, 0.99):
                assert histogram_quantile(got, q) == histogram_quantile(
                    want, q
                )

    def test_gauge_last_write_wins_with_attribution(self):
        with Collector(registry=MetricsRegistry()) as collector:
            for rank, value in ((0, 1.0), (1, 2.0)):
                reg = MetricsRegistry()
                reg.gauge("fleet_gauge", "f").set(value)
                client = self._client(collector, rank, reg)
                client.close()
                wait_disconnected(collector, sources=rank + 1)
            assert merged_value(collector.registry, "fleet_gauge") == 2.0
            attribution = collector.gauge_attribution()
            assert attribution["fleet_gauge"].startswith("r1/")

    def test_events_and_span_stitching(self):
        obs.configure(tracing=True)
        obs.get_tracer().clear()
        try:
            with Collector(registry=MetricsRegistry()) as collector:
                reg = MetricsRegistry()
                client = RelayClient(
                    collector.host,
                    collector.port,
                    rank=5,
                    registry=reg,
                    bus=TelemetryBus(),
                    install_bus=True,
                    flush_interval=0.05,
                )
                with obs.span("root_search", worker=3, root=17):
                    pass
                bus_mod.publish_event("root_commit", worker=3, root=17)
                client.close()
                wait_disconnected(collector)
                records = collector.stitched_records()
                spans = [r for r in records if r.name == "root_search"]
                assert len(spans) == 1
                span = spans[0]
                assert span.attrs["pid"] == os.getpid()
                assert span.attrs["rank"] == 5
                # Lanes are namespaced by source so two processes'
                # "worker 3" stay separate in the stitched trace.
                source = f"r5/pid{os.getpid()}"
                assert span.attrs["worker"] == f"{source}:3"
                assert span.thread.startswith(f"{source}:")
                events = [r for r in records if r.name == "root_commit"]
                assert len(events) == 1
                assert events[0].attrs["rank"] == 5
                raw = collector.events()
                assert raw and raw[-1]["source"] == source
        finally:
            obs.configure(tracing=False)
            obs.get_tracer().clear()

    def test_telemetry_health_in_obs_summary(self):
        with Collector(registry=MetricsRegistry()) as collector:
            reg = MetricsRegistry()
            reg.counter("fleet_total", "f").inc(1)
            client = self._client(collector, 0, reg)
            client.close()
            wait_disconnected(collector)
            summary = obs.render_summary(collector.registry)
            assert "telemetry:" in summary
            line = next(
                l for l in summary.splitlines() if "frames" in l
            )
            assert f"r0/pid{os.getpid()}" in line
            assert "dropped 0" in line and "max queue lag" in line

    def test_render_fleet_shows_sources_and_drop_warning(self):
        with Collector(registry=MetricsRegistry()) as collector:
            frame = render_fleet(collector)
            assert "(no sources connected)" in frame
            reg = MetricsRegistry()
            reg.counter("fleet_total", "f").inc(1)
            client = self._client(collector, 0, reg)
            # Fake a drop report from the source.
            client.bus.dropped["events"] = 3
            client.flush()
            client.close()
            wait_disconnected(collector)
            frame = render_fleet(collector)
            assert f"r0/pid{os.getpid()}" in frame
            assert "WARNING" in frame and "dropped" in frame


def _fleet_child(host, port, rank):
    """Two-process integration child: known metrics, spans, events."""
    obs.reset()
    obs.configure(tracing=True)
    obs.get_tracer().clear()
    registry = obs.get_registry()
    registry.counter("fleet_total", "f").inc(100 + rank)
    h = registry.histogram("fleet_lat", "f", buckets=BOUNDS)
    for i in range(50):
        h.observe(0.01 * (i + 1) * (rank + 1))
    client = RelayClient(host, port, rank=rank, flush_interval=0.05)
    try:
        with obs.span("root_search", worker=rank, root=7):
            pass
        bus_mod.publish_event("root_commit", worker=rank, root=7)
    finally:
        client.close()


class TestTwoProcessIntegration:
    def test_merges_exact_and_spans_attributed(self, tmp_path):
        ref = MetricsRegistry().histogram("fleet_lat", "f", buckets=BOUNDS)
        for rank in range(2):
            for i in range(50):
                ref.observe(0.01 * (i + 1) * (rank + 1))
        with Collector(registry=MetricsRegistry()) as collector:
            children = [
                multiprocessing.Process(
                    target=_fleet_child,
                    args=(collector.host, collector.port, rank),
                )
                for rank in range(2)
            ]
            for child in children:
                child.start()
            for child in children:
                child.join(timeout=60.0)
                assert child.exitcode == 0
            wait_disconnected(collector, sources=2)

            # Counter merge is exact: 100 + 101.
            assert merged_value(collector.registry, "fleet_total") == 201.0
            # Histogram merge equals one registry observing both
            # streams (counts and buckets exact).
            got = merged_value(collector.registry, "fleet_lat")
            want = ref.value()
            assert got["count"] == want["count"] == 100
            assert got["buckets"] == want["buckets"]
            assert got["sum"] == pytest.approx(want["sum"], rel=1e-9)

            # Spans arrive pid/rank-attributed from both children.
            spans = [
                r
                for r in collector.stitched_records()
                if r.name == "root_search"
            ]
            assert {r.attrs["rank"] for r in spans} == {0, 1}
            child_pids = {c.pid for c in children}
            assert {r.attrs["pid"] for r in spans} == child_pids

            # ... and land in ONE stitched Chrome trace.
            trace_path = tmp_path / "fleet.trace.json"
            count = collector.write_chrome_trace(str(trace_path))
            assert count > 0
            doc = json.loads(trace_path.read_text())
            named = [
                e
                for e in doc["traceEvents"]
                if e.get("name") == "root_search"
            ]
            assert {e["args"]["rank"] for e in named} == {0, 1}
            assert {e["args"]["pid"] for e in named} == child_pids

            # Healthy fleet: nothing dropped, nothing malformed.
            stats = collector.stats()
            assert stats["dropped"] == 0
            assert stats["malformed"] == 0
            assert stats["merge_errors"] == 0
            assert stats["frames"] > 0


class TestFailureModes:
    def test_dead_collector_marks_client_dead(self):
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()
        reg = MetricsRegistry()
        ctr = reg.counter("fleet_total", "f")
        client = RelayClient(
            host,
            port,
            rank=0,
            registry=reg,
            bus=TelemetryBus(),
            install_bus=True,
            flush_interval=60.0,  # flush manually below
        )
        conn, _ = listener.accept()
        conn.close()
        listener.close()
        # The first send after the peer dies can still land in the
        # kernel buffer; keep flushing until the failure surfaces.
        def flush_until_dead():
            ctr.inc()
            client.flush()
            return client.dead

        assert wait_until(flush_until_dead, timeout=10.0)
        assert client.send_failures >= 1
        # A dead relay uninstalls its bus so producers stop paying.
        assert bus_mod.active() is None
        assert client.flush() == 0  # dead clients stay quiet
        client.close()

    def test_partial_frame_counted_rest_merged(self):
        with Collector(registry=MetricsRegistry()) as collector:
            sock = socket.create_connection(
                (collector.host, collector.port), timeout=5.0
            )
            header = json.dumps(
                {
                    "kind": "header",
                    "schema": TELEMETRY_SCHEMA,
                    "pid": 999,
                    "rank": 0,
                    "capacity": 8,
                }
            )
            good = json.dumps(
                {
                    "kind": "metrics",
                    "seq": 1,
                    "ts": 1.0,
                    "mono": 1.0,
                    "payload": [
                        {
                            "name": "fleet_total",
                            "kind": "counter",
                            "help": "f",
                            "labels": {},
                            "delta": 7,
                        }
                    ],
                }
            )
            # A child died mid-write: a truncated JSON line between two
            # valid frames.
            sock.sendall(
                (header + "\n" + '{"kind": "metr' + "\n" + good + "\n").encode()
            )
            sock.close()
            wait_disconnected(collector)
            assert collector.stats()["malformed"] == 1
            assert merged_value(collector.registry, "fleet_total") == 7.0

    def test_frames_before_header_counted_malformed(self):
        with Collector(registry=MetricsRegistry()) as collector:
            sock = socket.create_connection(
                (collector.host, collector.port), timeout=5.0
            )
            sock.sendall(
                json.dumps(
                    {"kind": "events", "seq": 1, "payload": {"name": "x"}}
                ).encode()
                + b"\n"
            )
            sock.close()
            assert wait_until(
                lambda: collector.stats()["malformed"] == 1
            ), collector.stats()
            assert collector.stats()["sources"] == {}

    def test_unknown_frame_kind_counted(self):
        with Collector(registry=MetricsRegistry()) as collector:
            sock = socket.create_connection(
                (collector.host, collector.port), timeout=5.0
            )
            header = {
                "kind": "header",
                "schema": TELEMETRY_SCHEMA,
                "pid": 998,
                "rank": None,
                "capacity": 8,
            }
            bogus = {"kind": "unknown-kind", "seq": 1, "payload": {}}
            sock.sendall(
                (json.dumps(header) + "\n" + json.dumps(bogus) + "\n").encode()
            )
            sock.close()
            wait_disconnected(collector)
            assert collector.stats()["malformed"] == 1

    def test_conflicting_series_counted_as_merge_error(self):
        with Collector(registry=MetricsRegistry()) as collector:
            # Source A registers fleet_lat with one bucket layout ...
            reg_a = MetricsRegistry()
            reg_a.histogram("fleet_lat", "f", buckets=BOUNDS).observe(0.5)
            client = RelayClient(
                collector.host,
                collector.port,
                rank=0,
                registry=reg_a,
                bus=TelemetryBus(),
                install_bus=False,
                flush_interval=0.05,
            )
            client.close()
            # ... source B ships the same name with different bounds.
            reg_b = MetricsRegistry()
            reg_b.histogram("fleet_lat", "f", buckets=(1.0, 2.0)).observe(
                1.5
            )
            client = RelayClient(
                collector.host,
                collector.port,
                rank=1,
                registry=reg_b,
                bus=TelemetryBus(),
                install_bus=False,
                flush_interval=0.05,
            )
            client.close()
            wait_disconnected(collector, sources=2)
            assert collector.stats()["merge_errors"] == 1
            # Source A's series survived untouched.
            assert merged_value(collector.registry, "fleet_lat")["count"] == 1


class TestDashCLI:
    def test_dash_once_renders_without_tty(self, capsys):
        from repro.cli import main

        assert main(["dash", "--once", "--no-clear"]) == 0
        out = capsys.readouterr().out
        assert "telemetry collector listening on" in out
        assert "parapll fleet" in out
        assert "(no sources connected)" in out
