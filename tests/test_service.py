"""Tests for the serving layer: oracle and TCP server/client."""

import math
import threading

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.index import PLLIndex
from repro.errors import GraphError, ReproError
from repro.service import DistanceClient, DistanceOracle, DistanceServer


@pytest.fixture(scope="module")
def index(request):
    from repro.generators.random_graphs import gnm_random_graph

    graph = gnm_random_graph(40, 100, seed=7)
    return PLLIndex.build(graph)


class TestOracle:
    def test_distances_exact(self, index):
        oracle = DistanceOracle(index)
        truth = dijkstra_sssp(index.graph, 0)
        for t in range(index.num_vertices):
            assert oracle.distance(0, t) == truth[t]

    def test_cache_hits_symmetric(self, index):
        oracle = DistanceOracle(index)
        a = oracle.distance(1, 5)
        b = oracle.distance(5, 1)  # symmetric key -> cache hit
        assert a == b
        assert oracle.stats.cache_hits == 1
        assert oracle.stats.queries == 2
        assert oracle.stats.hit_rate == 0.5

    def test_cache_eviction(self, index):
        oracle = DistanceOracle(index, cache_size=2)
        oracle.distance(0, 1)
        oracle.distance(0, 2)
        oracle.distance(0, 3)  # evicts (0, 1)
        entries, cap = oracle.cache_info()
        assert entries == 2 and cap == 2
        oracle.distance(0, 1)
        assert oracle.stats.cache_hits == 0

    def test_cache_disabled(self, index):
        oracle = DistanceOracle(index, cache_size=0)
        oracle.distance(0, 1)
        oracle.distance(0, 1)
        assert oracle.stats.cache_hits == 0

    def test_negative_cache_size(self, index):
        with pytest.raises(GraphError):
            DistanceOracle(index, cache_size=-1)

    def test_batch(self, index):
        oracle = DistanceOracle(index)
        pairs = [(0, 1), (2, 3), (4, 5)]
        out = oracle.batch(pairs)
        assert out == [index.distance(s, t) for s, t in pairs]
        assert oracle.stats.batch_queries == 1

    def test_batch_large_vectorized_path(self, index):
        # Cross the batch kernel's scalar-fallback threshold.
        oracle = DistanceOracle(index)
        n = index.num_vertices
        pairs = [(s % n, (3 * s + 1) % n) for s in range(200)]
        out = oracle.batch(pairs)
        assert out == [index.distance(s, t) for s, t in pairs]
        assert oracle.stats.queries == 200

    def test_batch_uses_and_fills_cache(self, index):
        oracle = DistanceOracle(index)
        oracle.distance(0, 1)  # prime the cache
        out = oracle.batch([(0, 1), (1, 0), (2, 3)])
        assert out == [
            index.distance(0, 1),
            index.distance(0, 1),
            index.distance(2, 3),
        ]
        # (0,1) and its symmetric twin hit; (2,3) missed and was cached.
        assert oracle.stats.cache_hits == 2
        second = oracle.batch([(2, 3)])
        assert second == [index.distance(2, 3)]
        assert oracle.stats.cache_hits == 3

    def test_batch_respects_cache_capacity(self, index):
        oracle = DistanceOracle(index, cache_size=2)
        oracle.batch([(0, 1), (0, 2), (0, 3)])
        entries, cap = oracle.cache_info()
        assert entries == 2 and cap == 2

    def test_batch_empty(self, index):
        oracle = DistanceOracle(index)
        assert oracle.batch([]) == []
        assert oracle.stats.batch_queries == 1
        assert oracle.stats.queries == 0

    def test_knn_lazy_build(self, index):
        oracle = DistanceOracle(index)
        out = oracle.k_nearest(3, 4)
        assert len(out) == 4
        truth = dijkstra_sssp(index.graph, 3)
        for v, d in out:
            assert d == truth[v]
        assert oracle.stats.knn_queries == 1

    def test_shortest_path(self, index):
        oracle = DistanceOracle(index)
        path = oracle.shortest_path(0, 7)
        assert path[0] == 0 and path[-1] == 7
        assert oracle.stats.path_queries == 1

    def test_clear_cache(self, index):
        oracle = DistanceOracle(index)
        oracle.distance(0, 1)
        oracle.clear_cache()
        assert oracle.cache_info()[0] == 0

    def test_thread_safety(self, index):
        oracle = DistanceOracle(index, cache_size=64)
        truth = dijkstra_sssp(index.graph, 0)
        errors = []

        def hammer():
            try:
                for t in range(index.num_vertices):
                    assert oracle.distance(0, t) == truth[t]
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors


class TestServer:
    @pytest.fixture()
    def server(self, index):
        oracle = DistanceOracle(index)
        with DistanceServer(oracle) as srv:
            yield srv

    def test_ping(self, server):
        with DistanceClient("127.0.0.1", server.port) as client:
            assert client.ping()

    def test_distance_roundtrip(self, index, server):
        truth = dijkstra_sssp(index.graph, 2)
        with DistanceClient("127.0.0.1", server.port) as client:
            for t in range(0, index.num_vertices, 5):
                assert client.distance(2, t) == truth[t]

    def test_batch_roundtrip(self, index, server):
        with DistanceClient("127.0.0.1", server.port) as client:
            pairs = [(0, 1), (3, 9)]
            out = client.batch(pairs)
            assert out == [index.distance(s, t) for s, t in pairs]

    def test_knn_roundtrip(self, index, server):
        with DistanceClient("127.0.0.1", server.port) as client:
            out = client.k_nearest(1, 3)
            assert len(out) == 3
            truth = dijkstra_sssp(index.graph, 1)
            for v, d in out:
                assert d == truth[v]

    def test_path_roundtrip(self, index, server):
        with DistanceClient("127.0.0.1", server.port) as client:
            path = client.shortest_path(0, 5)
            assert path[0] == 0 and path[-1] == 5

    def test_stats(self, server):
        with DistanceClient("127.0.0.1", server.port) as client:
            client.distance(0, 1)
            stats = client.stats()
            assert stats["queries"] >= 1

    def test_unreachable_encoding(self, two_components, server):
        # Build a dedicated server over a disconnected graph.
        oracle = DistanceOracle(PLLIndex.build(two_components))
        with DistanceServer(oracle) as srv:
            with DistanceClient("127.0.0.1", srv.port) as client:
                assert client.distance(0, 3) == math.inf

    def test_error_response(self, server):
        with DistanceClient("127.0.0.1", server.port) as client:
            with pytest.raises(ReproError):
                client.distance(0, 10_000)  # out of range

    def test_multiple_clients(self, index, server):
        clients = [
            DistanceClient("127.0.0.1", server.port) for _ in range(3)
        ]
        try:
            for i, c in enumerate(clients):
                assert c.distance(i, i + 1) == index.distance(i, i + 1)
        finally:
            for c in clients:
                c.close()

    def test_unknown_op(self, server):
        import json
        import socket

        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=5
        ) as sock:
            f = sock.makefile("rwb")
            f.write(b'{"op": "teleport"}\n')
            f.flush()
            response = json.loads(f.readline())
            assert response["ok"] is False
            assert "unknown op" in response["error"]

    def test_malformed_line_counted(self, server):
        import json
        import socket

        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=5
        ) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            response = json.loads(f.readline())
            assert response["ok"] is False
            assert "malformed" in response["error"]
            # The connection survives a garbage line.
            f.write(b'{"op": "ping"}\n')
            f.flush()
            assert json.loads(f.readline())["ok"] is True
        assert server.malformed_lines >= 1

    def test_non_object_json_counted_malformed(self, server):
        import json
        import socket

        before = server.malformed_lines
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=5
        ) as sock:
            f = sock.makefile("rwb")
            f.write(b"[1, 2, 3]\n")
            f.flush()
            response = json.loads(f.readline())
            assert response["ok"] is False
        assert server.malformed_lines == before + 1

    def test_stats_reports_malformed_lines(self, server):
        import json
        import socket

        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=5
        ) as sock:
            f = sock.makefile("rwb")
            f.write(b"{broken\n")
            f.flush()
            f.readline()
        with DistanceClient("127.0.0.1", server.port) as client:
            stats = client.stats()
            assert stats["malformed_lines"] >= 1

    def test_metrics_op(self, server):
        from repro import obs

        obs.reset()
        with DistanceClient("127.0.0.1", server.port) as client:
            client.distance(0, 1)
            snapshot = client.metrics()
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        requests = by_name["parapll_service_requests_total"]
        distance_series = [
            s
            for s in requests["series"]
            if s["labels"] == {"op": "distance"}
        ]
        assert distance_series and distance_series[0]["value"] >= 1
        # Latency histogram observed the same request.
        latency = by_name["parapll_service_request_seconds"]
        dist_lat = [
            s
            for s in latency["series"]
            if s["labels"] == {"op": "distance"}
        ]
        assert dist_lat and dist_lat[0]["value"]["count"] >= 1
        assert "malformed_lines" in snapshot


class TestRequestIdsAndSlowLog:
    @pytest.fixture()
    def slow_server(self, index):
        """Server whose slow-query threshold trips on every request."""
        from repro import obs

        obs.reset()
        oracle = DistanceOracle(index)
        with DistanceServer(oracle, slow_query_seconds=0.0) as srv:
            yield srv
        obs.reset()

    def test_req_id_on_every_response(self, index):
        oracle = DistanceOracle(index)
        with DistanceServer(oracle) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                first = client._call({"op": "ping"})
                second = client._call({"op": "distance", "s": 0, "t": 1})
                assert first["req_id"] == 1
                assert second["req_id"] == 2

    def test_client_id_echoed_alongside_req_id(self, index):
        oracle = DistanceOracle(index)
        with DistanceServer(oracle) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                reply = client._call(
                    {"op": "distance", "s": 0, "t": 1, "id": "abc-123"}
                )
                assert reply["id"] == "abc-123"
                assert isinstance(reply["req_id"], int)

    def test_error_responses_carry_req_id(self, index):
        import json
        import socket

        oracle = DistanceOracle(index)
        with DistanceServer(oracle) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            ) as sock:
                f = sock.makefile("rwb")
                f.write(b'{"op": "nope"}\n')
                f.flush()
                reply = json.loads(f.readline())
        assert reply["ok"] is False
        assert "req_id" in reply

    def test_slow_queries_counted_in_stats(self, slow_server):
        with DistanceClient("127.0.0.1", slow_server.port) as client:
            client.distance(0, 1)
            client.distance(1, 2)
            stats = client.stats()
            assert stats["slow_requests"] >= 2

    def test_slow_query_traced(self, index):
        from repro import obs

        obs.reset()
        obs.configure(tracing=True)
        try:
            oracle = DistanceOracle(index)
            with DistanceServer(oracle, slow_query_seconds=0.0) as server:
                with DistanceClient("127.0.0.1", server.port) as client:
                    client.distance(0, 1)
            names = [r.name for r in obs.get_tracer().records()]
            assert "slow_query" in names
        finally:
            obs.configure(tracing=False)
            obs.reset()

    def test_threshold_disabled_counts_nothing(self, index):
        from repro import obs

        obs.reset()
        oracle = DistanceOracle(index)
        with DistanceServer(oracle, slow_query_seconds=None) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                client.distance(0, 1)
                stats = client.stats()
                assert stats["slow_requests"] == 0

    def test_negative_threshold_rejected(self, index):
        oracle = DistanceOracle(index)
        with pytest.raises(ReproError):
            DistanceServer(oracle, slow_query_seconds=-1.0)

    def test_stats_latency_quantiles(self, index):
        from repro import obs

        obs.reset()
        oracle = DistanceOracle(index)
        with DistanceServer(oracle) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                for t in range(1, 5):
                    client.distance(0, t)
                stats = client.stats()
        quantiles = stats["latency_quantiles"]
        assert "distance" in quantiles
        entry = quantiles["distance"]
        assert set(entry) == {"p50", "p95", "p99"}
        assert entry["p50"] <= entry["p95"] <= entry["p99"]


class TestIntrospectionOps:
    @pytest.fixture()
    def server(self, index):
        from repro import obs

        obs.reset()
        oracle = DistanceOracle(index)
        with DistanceServer(oracle) as srv:
            yield srv
        obs.reset()

    def test_explain_op_round_trip(self, index, server):
        with DistanceClient("127.0.0.1", server.port) as client:
            doc = client.explain(3, 17)
            assert doc["schema"] == "parapll-explain/1"
            assert doc["s"] == 3 and doc["t"] == 17
            assert doc["distance"] == index.distance(3, 17)
            roles = {c["role"] for c in doc["candidates"]}
            assert "winner" in roles

    def test_explain_op_counts_in_oracle_stats(self, index):
        oracle = DistanceOracle(index)
        with DistanceServer(oracle) as srv:
            with DistanceClient("127.0.0.1", srv.port) as client:
                client.explain(0, 1)
                client.explain(0, 2)
        assert oracle.stats.explain_queries == 2
        # EXPLAIN runs uncached; plain query counters are untouched.
        assert oracle.stats.queries == 0

    def test_explain_unreachable_encoding(self, two_components):
        oracle = DistanceOracle(PLLIndex.build(two_components))
        with DistanceServer(oracle) as srv:
            with DistanceClient("127.0.0.1", srv.port) as client:
                doc = client.explain(0, 3)
        assert doc["distance"] == "inf"
        assert doc["reachable"] is False

    def test_status_op_fields(self, index, server):
        with DistanceClient("127.0.0.1", server.port) as client:
            client.distance(0, 1)
            status = client.status()
        assert status["uptime_seconds"] >= 0.0
        assert status["index"]["vertices"] == index.num_vertices
        assert status["index"]["entries"] > 0
        assert status["index"]["avg_label_size"] > 0
        # The status request itself is counted while being served.
        assert status["in_flight"] >= 1
        assert status["queries"] >= 1
        assert status["malformed_lines"] == 0
        assert "latency_quantiles" in status
        assert isinstance(status["flightrec"], list)

    def test_debug_op_returns_flightrec_tail(self, server):
        from repro.obs import flightrec

        flightrec.get_recorder().clear()
        flightrec.record("marker_one", n=1)
        flightrec.record("marker_two", n=2)
        with DistanceClient("127.0.0.1", server.port) as client:
            doc = client.debug()
            assert doc["schema"] == "parapll-flightrec/1"
            kinds = [e["kind"] for e in doc["flightrec"]]
            assert "marker_one" in kinds and "marker_two" in kinds
            newest = client.debug(last=1)["flightrec"]
            assert len(newest) == 1
            assert newest[0]["kind"] == "marker_two"


class TestBatchLatencyAndDeadline:
    def test_batch_records_per_pair_latency(self, index):
        from repro import obs

        obs.reset()
        oracle = DistanceOracle(index)
        with DistanceServer(oracle) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                client.batch([(0, 1), (2, 3), (4, 5)])
        snapshot = obs.get_registry().snapshot()
        by_name = {m["name"]: m for m in snapshot}
        latency = by_name["parapll_service_request_seconds"]
        batch_lat = [
            s for s in latency["series"] if s["labels"] == {"op": "batch"}
        ]
        # One histogram sample per pair, not one per request.
        assert batch_lat and batch_lat[0]["value"]["count"] == 3
        requests = by_name["parapll_service_requests_total"]
        batch_req = [
            s for s in requests["series"] if s["labels"] == {"op": "batch"}
        ]
        assert batch_req and batch_req[0]["value"] == 1

    def test_batch_deadline_aborts_with_partial_results(self, index):
        import json as _json
        import socket

        oracle = DistanceOracle(index)
        with DistanceServer(oracle, slow_query_seconds=0.0) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            ) as sock:
                f = sock.makefile("rwb")
                req = {"op": "batch", "pairs": [[0, 1], [2, 3], [4, 5]]}
                f.write(_json.dumps(req).encode() + b"\n")
                f.flush()
                reply = _json.loads(f.readline())
        assert reply["ok"] is False
        # At least the first pair is always served.
        assert reply["completed"] == 1
        assert len(reply["distances"]) == 1
        assert "slow_query_seconds" in reply["error"]

    def test_batch_deadline_raises_client_side(self, index):
        oracle = DistanceOracle(index)
        with DistanceServer(oracle, slow_query_seconds=0.0) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                with pytest.raises(ReproError):
                    client.batch([(0, 1), (2, 3)])

    def test_no_deadline_serves_whole_batch(self, index):
        oracle = DistanceOracle(index)
        with DistanceServer(oracle, slow_query_seconds=None) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                out = client.batch([(0, 1), (2, 3), (4, 5)])
        assert len(out) == 3


class TestConcurrentIntrospection:
    def test_hammer_status_ops_during_batches(self, index):
        """Introspection ops stay consistent while batches are in
        flight: every connection sees strictly increasing req_ids and
        nothing is miscounted as malformed."""
        from repro import obs

        obs.reset()
        oracle = DistanceOracle(index)
        n = index.num_vertices
        pairs = [(i % n, (i * 7 + 1) % n) for i in range(50)]
        errors = []

        with DistanceServer(oracle) as server:

            def batch_worker():
                try:
                    with DistanceClient("127.0.0.1", server.port) as c:
                        for _ in range(5):
                            c.batch(pairs)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            def introspect_worker():
                try:
                    with DistanceClient("127.0.0.1", server.port) as c:
                        req_ids = []
                        for _ in range(10):
                            req_ids.append(
                                c._call({"op": "status"})["req_id"]
                            )
                            c.stats()
                            c.metrics()
                        assert req_ids == sorted(req_ids)
                        assert len(set(req_ids)) == len(req_ids)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            workers = [
                threading.Thread(target=batch_worker) for _ in range(2)
            ] + [
                threading.Thread(target=introspect_worker)
                for _ in range(3)
            ]
            for th in workers:
                th.start()
            for th in workers:
                th.join()

            assert not errors
            with DistanceClient("127.0.0.1", server.port) as client:
                status = client.status()
        assert status["malformed_lines"] == 0
        obs.reset()


class TestErrorPaths:
    """Server/oracle failure modes: bad ids, eviction order, retries."""

    def test_distance_out_of_range_vertex(self, index):
        oracle = DistanceOracle(index)
        with DistanceServer(oracle) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                with pytest.raises(ReproError) as excinfo:
                    client.distance(0, index.num_vertices + 5)
        assert "req_id=" in str(excinfo.value)

    def test_batch_out_of_range_vertex(self, index):
        oracle = DistanceOracle(index)
        with DistanceServer(oracle) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                with pytest.raises(ReproError):
                    client.batch([(0, 1), (0, index.num_vertices)])
                # The connection survives the refused request.
                assert client.ping()

    def test_lru_eviction_order_interleaved(self, index):
        """Point and batch traffic share one LRU, strict recency order."""
        oracle = DistanceOracle(index, cache_size=2)
        oracle.distance(0, 1)  # cache: [(0,1)]
        oracle.batch([(0, 2)])  # cache: [(0,1), (0,2)]
        oracle.distance(1, 0)  # symmetric hit refreshes (0,1)
        assert oracle.stats.cache_hits == 1
        oracle.batch([(0, 3)])  # full: evicts (0,2), keeps hot (0,1)
        hits_before = oracle.stats.cache_hits
        oracle.distance(0, 1)  # survived
        assert oracle.stats.cache_hits == hits_before + 1
        oracle.distance(0, 2)  # evicted -> miss
        assert oracle.stats.cache_hits == hits_before + 1
        entries, cap = oracle.cache_info()
        assert entries == 2 and cap == 2

    def test_client_fail_fast_without_retries(self):
        import socket as _socket

        # A bound-but-unlistened port refuses connections immediately.
        probe = _socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ReproError) as excinfo:
            DistanceClient("127.0.0.1", port, connect_retries=0)
        assert "after 1 attempt(s)" in str(excinfo.value)

    def test_client_retries_until_server_appears(self, index):
        import socket as _socket

        probe = _socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        oracle = DistanceOracle(index)
        holder = {}

        def late_start():
            import time as _time

            _time.sleep(0.15)
            holder["server"] = DistanceServer(
                oracle, port=port
            ).start()

        starter = threading.Thread(target=late_start)
        starter.start()
        try:
            client = DistanceClient(
                "127.0.0.1",
                port,
                connect_retries=8,
                retry_backoff=0.05,
            )
            try:
                assert client.ping()
            finally:
                client.close()
        finally:
            starter.join()
            holder["server"].stop()

    def test_client_rejects_bad_retry_config(self):
        with pytest.raises(ReproError):
            DistanceClient("127.0.0.1", 1, connect_retries=-1)


class TestSLOServing:
    """The health op, windowed stats and burn-rate load shedding."""

    @pytest.fixture()
    def slo_server(self, index):
        from repro.obs.slo import SLOTracker

        oracle = DistanceOracle(index)
        with DistanceServer(oracle, slo_tracker=SLOTracker()) as srv:
            yield srv

    def test_health_reports_targets_and_burn(self, slo_server):
        with DistanceClient("127.0.0.1", slo_server.port) as client:
            for t in range(1, 8):
                client.distance(0, t)
            health = client.health()
        slo = health["slo"]
        assert slo["schema"] == "parapll-slo/1"
        names = {t["name"] for t in slo["targets"]}
        assert names == {"latency_p99_50ms", "availability"}
        for target in slo["targets"]:
            assert target["burn_rate"] == 0.0
            assert not target["breached"]
        assert slo["breached"] == []
        assert slo["requests_total"] >= 7
        assert health["shedding"]["burn_rate_threshold"] is None
        assert health["shedding"]["active"] is False
        assert health["shedding"]["shed_requests"] == 0

    def test_stats_windowed_quantiles(self, slo_server):
        with DistanceClient("127.0.0.1", slo_server.port) as client:
            for t in range(1, 6):
                client.distance(0, t)
            stats = client.stats()
        windowed = stats["windowed_latency_quantiles"]
        assert "10s" in windowed
        assert set(windowed["10s"]) == {"p50", "p95", "p99"}
        assert windowed["10s"]["p50"] >= 0.0

    def test_introspection_excluded_from_slo(self, slo_server):
        with DistanceClient("127.0.0.1", slo_server.port) as client:
            client.distance(0, 1)
            client.stats()
            client.metrics()
            client.status()
            health = client.health()
        # Only ping/distance/... feed the windows, not stats/metrics.
        assert health["slo"]["requests_total"] == 1

    def test_shedding_fast_fails_point_and_batch(self, index):
        from repro import obs
        from repro.obs.slo import SLOTarget, SLOTracker

        obs.reset()
        tracker = SLOTracker(
            targets=(
                SLOTarget(
                    name="strict",
                    kind="latency",
                    objective=0.9,
                    threshold_seconds=1e-9,
                    window_seconds=60,
                ),
            )
        )
        for _ in range(20):
            tracker.record(0.01)  # burn: 1.0 / 0.1 budget = 10x
        oracle = DistanceOracle(index)
        with DistanceServer(
            oracle, slo_tracker=tracker, shed_burn_rate=1.0
        ) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                with pytest.raises(ReproError) as excinfo:
                    client.distance(0, 1)
                assert "shed" in str(excinfo.value)
                with pytest.raises(ReproError):
                    client.batch([(0, 1)])
                # Introspection keeps flowing under overload.
                assert client.ping()
                health = client.health()
                stats = client.stats()
            assert server.shed_count == 2
        assert health["shedding"]["active"] is True
        assert health["shedding"]["shed_requests"] >= 1
        # The oracle never saw the shed requests.
        assert stats["queries"] == 0
        obs.reset()

    def test_shed_requests_logged_to_qlog(self, index):
        from repro import obs
        from repro.obs.qlog import QueryLogRecorder, recording
        from repro.obs.slo import SLOTarget, SLOTracker

        obs.reset()
        tracker = SLOTracker(
            targets=(
                SLOTarget(
                    name="strict",
                    kind="latency",
                    objective=0.9,
                    threshold_seconds=1e-9,
                    window_seconds=60,
                ),
            )
        )
        for _ in range(20):
            tracker.record(0.01)
        oracle = DistanceOracle(index)
        with recording(QueryLogRecorder(sample=1.0)) as rec:
            with DistanceServer(
                oracle, slo_tracker=tracker, shed_burn_rate=1.0
            ) as server:
                with DistanceClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ReproError):
                        client.distance(3, 4)
        records = rec.snapshot()
        assert len(records) == 1
        assert records[0]["outcome"] == "shed"
        assert records[0]["s"] == 3 and records[0]["t"] == 4
        assert records[0]["req_id"] is not None
        obs.reset()

    def test_shed_rejects_bad_threshold(self, index):
        with pytest.raises(ReproError):
            DistanceServer(DistanceOracle(index), shed_burn_rate=0.0)

    def test_server_qlog_records_carry_req_id(self, index):
        from repro.obs.qlog import QueryLogRecorder, recording

        oracle = DistanceOracle(index)
        with recording(QueryLogRecorder(sample=1.0)) as rec:
            with DistanceServer(oracle) as server:
                with DistanceClient("127.0.0.1", server.port) as client:
                    client.distance(0, 5)
                    client.batch([(1, 2), (3, 4)])
        records = rec.snapshot()
        assert len(records) == 3
        assert all(r["req_id"] is not None for r in records)
        # Both batch pairs share their request's id.
        assert records[1]["req_id"] == records[2]["req_id"]
