"""Tests for the three priority-queue implementations.

All three are checked against the same behavioural contract, plus a
hypothesis heap-sort property comparing them with ``sorted``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pq import (
    PQ_IMPLEMENTATIONS,
    AddressableBinaryHeap,
    LazyHeapPQ,
    PairingHeap,
)

ALL = list(PQ_IMPLEMENTATIONS.values())


@pytest.fixture(params=ALL, ids=list(PQ_IMPLEMENTATIONS))
def pq(request):
    return request.param()


class TestContract:
    def test_empty(self, pq):
        assert len(pq) == 0
        assert not pq

    def test_pop_empty_raises(self, pq):
        with pytest.raises(IndexError):
            pq.pop_min()

    def test_peek_empty_raises(self, pq):
        with pytest.raises(IndexError):
            pq.peek()

    def test_push_pop_single(self, pq):
        pq.push(7, 3.5)
        assert len(pq) == 1
        assert pq
        assert pq.peek() == (3.5, 7)
        assert pq.pop_min() == (3.5, 7)
        assert len(pq) == 0

    def test_orders_by_key(self, pq):
        pq.push(1, 5.0)
        pq.push(2, 1.0)
        pq.push(3, 3.0)
        assert [pq.pop_min()[1] for _ in range(3)] == [2, 3, 1]

    def test_decrease_key(self, pq):
        pq.push(1, 10.0)
        pq.push(2, 5.0)
        pq.push(1, 1.0)  # decrease
        assert pq.pop_min() == (1.0, 1)
        assert pq.pop_min() == (5.0, 2)

    def test_increase_key_ignored(self, pq):
        pq.push(1, 1.0)
        pq.push(1, 10.0)  # ignored
        assert pq.pop_min() == (1.0, 1)
        assert len(pq) == 0

    def test_equal_key_ignored(self, pq):
        pq.push(1, 2.0)
        pq.push(1, 2.0)
        assert len(pq) == 1
        pq.pop_min()
        assert len(pq) == 0

    def test_contains(self, pq):
        pq.push(4, 1.0)
        assert 4 in pq
        assert 5 not in pq
        pq.pop_min()
        assert 4 not in pq

    def test_key_of(self, pq):
        pq.push(4, 2.5)
        assert pq.key_of(4) == 2.5
        pq.push(4, 1.5)
        assert pq.key_of(4) == 1.5
        with pytest.raises(KeyError):
            pq.key_of(99)

    def test_reinsertion_after_pop(self, pq):
        pq.push(1, 5.0)
        pq.pop_min()
        pq.push(1, 2.0)
        assert pq.pop_min() == (2.0, 1)

    def test_interleaved_operations(self, pq):
        pq.push(1, 9.0)
        pq.push(2, 4.0)
        assert pq.pop_min()[1] == 2
        pq.push(3, 1.0)
        pq.push(1, 2.0)  # decrease 1 below 3? no: 2.0 > 1.0
        assert pq.pop_min()[1] == 3
        assert pq.pop_min() == (2.0, 1)

    def test_many_items_sorted(self, pq):
        import random

        rng = random.Random(0)
        keys = {i: rng.random() for i in range(200)}
        for item, key in keys.items():
            pq.push(item, key)
        out = [pq.pop_min() for _ in range(len(keys))]
        assert out == sorted(out)
        assert {item for _k, item in out} == set(keys)


@pytest.mark.parametrize("impl", ALL, ids=list(PQ_IMPLEMENTATIONS))
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 30), st.floats(0, 100, allow_nan=False)),
        max_size=80,
    )
)
@settings(max_examples=60, deadline=None)
def test_matches_reference_model(impl, ops):
    """Push a random sequence; drain; compare with a dict-based model."""
    pq = impl()
    model = {}
    for item, key in ops:
        pq.push(item, key)
        if item not in model or key < model[item]:
            model[item] = key
    assert len(pq) == len(model)
    drained = []
    while pq:
        drained.append(pq.pop_min())
    keys = [k for k, _ in drained]
    assert keys == sorted(keys)  # non-decreasing keys (tie order is free)
    assert {i: k for k, i in drained} == model


def test_pairing_heap_deep_merge():
    """Regression: the iterative two-pass merge must survive long chains."""
    pq = PairingHeap()
    for i in range(5000):
        pq.push(i, float(i))
    for i in range(5000):
        assert pq.pop_min() == (float(i), i)


def test_lazy_heap_discards_stale_entries_on_peek():
    pq = LazyHeapPQ()
    pq.push(1, 10.0)
    pq.push(1, 5.0)
    pq.push(1, 2.0)
    assert pq.peek() == (2.0, 1)
    assert pq.pop_min() == (2.0, 1)
    assert not pq


def test_binary_heap_positions_consistent():
    pq = AddressableBinaryHeap()
    for i in range(50):
        pq.push(i, float(50 - i))
    for i in range(0, 50, 2):
        pq.push(i, -float(i))  # decrease half the keys
    prev = float("-inf")
    while pq:
        k, _ = pq.pop_min()
        assert k >= prev
        prev = k
