"""Tests for the serial weighted PLL builder."""

import math

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.query import query_distance
from repro.core.serial import build_serial
from repro.generators.random_graphs import gnm_random_graph
from repro.graph.order import by_approx_betweenness, by_degree, by_random

from .conftest import build_graph


def assert_exact(graph, store, sources=None):
    """The PLL invariant: QUERY == Dijkstra for every checked pair."""
    store.finalize()
    sources = sources if sources is not None else range(graph.num_vertices)
    for s in sources:
        truth = dijkstra_sssp(graph, s)
        for t in range(graph.num_vertices):
            assert query_distance(store, s, t) == truth[t], (s, t)


class TestCorrectness:
    def test_path(self, path_graph):
        store, _ = build_serial(path_graph)
        assert_exact(path_graph, store)

    def test_triangle(self, triangle):
        store, _ = build_serial(triangle)
        assert_exact(triangle, store)

    def test_star(self, star_graph):
        store, _ = build_serial(star_graph)
        assert_exact(star_graph, store)

    def test_disconnected(self, two_components):
        store, _ = build_serial(two_components)
        store.finalize()
        assert query_distance(store, 0, 1) == 1.0
        assert query_distance(store, 0, 2) == math.inf
        assert query_distance(store, 4, 0) == math.inf

    def test_random_graph(self, random_graph):
        store, _ = build_serial(random_graph)
        assert_exact(random_graph, store)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_seeds(self, seed):
        g = gnm_random_graph(30, 70, seed=seed)
        store, _ = build_serial(g)
        assert_exact(g, store)

    def test_single_vertex(self):
        g = build_graph([], n=1)
        store, stats = build_serial(g)
        store.finalize()
        assert query_distance(store, 0, 0) == 0.0
        assert stats.total_entries == 1  # the root labels itself

    def test_unit_weights(self, random_graph):
        g = random_graph.unit_weighted()
        store, _ = build_serial(g)
        assert_exact(g, store, sources=range(0, g.num_vertices, 5))


class TestOrderings:
    @pytest.mark.parametrize(
        "order_fn",
        [by_degree, lambda g: by_random(g, seed=1),
         lambda g: by_approx_betweenness(g, samples=8)],
        ids=["degree", "random", "betweenness"],
    )
    def test_any_ordering_is_exact(self, random_graph, order_fn):
        store, _ = build_serial(random_graph, order=order_fn(random_graph))
        assert_exact(random_graph, store, sources=range(0, 40, 4))

    def test_degree_order_smaller_than_random(self, medium_graph):
        """The paper's point: good orderings prune more."""
        deg_store, _ = build_serial(medium_graph)
        rnd_store, _ = build_serial(
            medium_graph, order=by_random(medium_graph, seed=0)
        )
        assert deg_store.total_entries <= rnd_store.total_entries


class TestStats:
    def test_stats_populated(self, random_graph):
        store, stats = build_serial(random_graph)
        assert stats.n == random_graph.num_vertices
        assert stats.total_entries == store.total_entries
        assert stats.avg_label_size == pytest.approx(store.avg_label_size)
        assert stats.build_seconds > 0
        assert stats.per_root == []

    def test_per_root_collection(self, random_graph):
        store, stats = build_serial(random_graph, collect_per_root=True)
        assert len(stats.per_root) == random_graph.num_vertices
        assert (
            sum(s.labels_added for s in stats.per_root)
            == store.total_entries
        )

    def test_per_root_off_matches_on(self, random_graph):
        a, _ = build_serial(random_graph, collect_per_root=False)
        b, _ = build_serial(random_graph, collect_per_root=True)
        assert a == b

    def test_every_vertex_labels_itself(self, random_graph):
        store, _ = build_serial(random_graph)
        for v in range(random_graph.num_vertices):
            assert store.label_size(v) >= 1
