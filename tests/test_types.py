"""Tests for the shared value objects in repro.types."""

import math

import pytest

from repro.types import (
    INF,
    IndexStats,
    ParallelRunResult,
    QueryResult,
    SearchStats,
)


class TestQueryResult:
    def test_reachable(self):
        assert QueryResult(3.0, hub=1, entries_scanned=2).reachable

    def test_unreachable(self):
        assert not QueryResult(INF, hub=None, entries_scanned=0).reachable

    def test_frozen(self):
        r = QueryResult(1.0, hub=0, entries_scanned=1)
        try:
            r.distance = 2.0
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestSearchStats:
    def test_defaults(self):
        s = SearchStats()
        assert s.root == -1
        assert s.settled == 0

    def test_merge_accumulates(self):
        a = SearchStats(settled=1, pruned=2, labels_added=3, relaxations=4,
                        heap_pushes=5, heap_pops=6, query_entries_scanned=7)
        b = SearchStats(settled=10, pruned=20, labels_added=30,
                        relaxations=40, heap_pushes=50, heap_pops=60,
                        query_entries_scanned=70)
        a.merge(b)
        assert a.settled == 11
        assert a.pruned == 22
        assert a.labels_added == 33
        assert a.relaxations == 44
        assert a.heap_pushes == 55
        assert a.heap_pops == 66
        assert a.query_entries_scanned == 77


class TestIndexStats:
    def test_from_sizes(self):
        stats = IndexStats.from_sizes([1, 2, 3], build_seconds=0.5)
        assert stats.n == 3
        assert stats.total_entries == 6
        assert stats.avg_label_size == 2.0
        assert stats.max_label_size == 3
        assert stats.build_seconds == 0.5

    def test_from_sizes_empty(self):
        stats = IndexStats.from_sizes([], build_seconds=0.0)
        assert stats.n == 0
        assert stats.avg_label_size == 0.0
        assert stats.max_label_size == 0


class TestParallelRunResult:
    def _result(self, busy):
        return ParallelRunResult(
            index_stats=IndexStats.from_sizes([1], 1.0),
            makespan=1.0,
            per_worker_busy=busy,
        )

    def test_imbalance_even(self):
        assert self._result([2.0, 2.0]).load_imbalance == 1.0

    def test_imbalance_skew(self):
        assert self._result([4.0, 2.0]).load_imbalance == pytest.approx(4 / 3)


def test_inf_is_math_inf():
    assert INF is math.inf
