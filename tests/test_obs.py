"""Tests for the observability layer: metrics, tracing, export, timers.

Global state (the default registry / tracer / config) is reset around
every test via the autouse fixture below, so tests here cannot leak
into each other or into the rest of the suite.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro import obs
from repro.errors import ReproError
from repro.generators.random_graphs import gnm_random_graph
from repro.obs import (
    MetricsRegistry,
    ObsError,
    PhaseTimer,
    SamplingProfiler,
    TraceRecord,
    Tracer,
)
from repro.obs.instruments import KNOWN_SERVICE_OPS, record_request


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset metrics/traces and restore the default configuration."""
    obs.reset()
    obs.configure(metrics=True, tracing=False, trace_capacity=4096)
    yield
    obs.reset()
    obs.configure(metrics=True, tracing=False, trace_capacity=4096)


# ----------------------------------------------------------------------
# Registry basics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help")
        with pytest.raises(ObsError):
            c.inc(-1)

    def test_gauge_set_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", "help")
        g.set(10)
        g.dec(3)
        assert g.value() == 7.0

    def test_labeled_series_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "help", labels=("worker",))
        c.labels(worker="0").inc(5)
        c.labels(worker="1").inc(7)
        assert c.labels(worker="0").value() == 5
        assert c.labels(worker="1").value() == 7

    def test_wrong_label_set_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "help", labels=("worker",))
        with pytest.raises(ObsError):
            c.labels(thread="0")
        with pytest.raises(ObsError):
            c.labels()

    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total", "help")
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "help")
        with pytest.raises(ObsError):
            reg.gauge("x_total", "help")

    def test_obs_error_is_repro_error(self):
        assert issubclass(ObsError, ReproError)

    def test_reset_zeroes_in_place(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help")
        c.inc(9)
        reg.reset()
        assert c.value() == 0.0  # same handle, zeroed
        c.inc()
        assert c.value() == 1.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "help", labels=("op",)).labels(op="q").inc()
        snap = reg.snapshot()
        assert snap == [
            {
                "name": "x_total",
                "kind": "counter",
                "help": "help",
                "series": [{"labels": {"op": "q"}, "value": 1.0}],
            }
        ]

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", "help", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(100.0)  # lands in +Inf
        text = json.dumps(reg.snapshot())  # must not raise
        assert "+Inf" in text


class TestHistogram:
    def test_bucket_boundaries_inclusive(self):
        # A value exactly on a bucket edge counts into that bucket
        # (Prometheus `le` semantics: upper bounds are inclusive).
        reg = MetricsRegistry()
        h = reg.histogram("h", "help", buckets=(1.0, 5.0, 10.0))
        for v in (1.0, 5.0, 5.0, 10.0, 11.0):
            h.observe(v)
        snap = h.value()
        buckets = dict(snap["buckets"])
        assert buckets[1.0] == 1  # cumulative: just the 1.0
        assert buckets[5.0] == 3  # + both 5.0s
        assert buckets[10.0] == 4  # + the 10.0
        assert buckets["+Inf"] == 5  # everything
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(32.0)

    def test_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", "help", buckets=(1.0, 2.0))
        with pytest.raises(ObsError):
            reg.histogram("h", "help", buckets=(1.0, 3.0))


class TestConcurrency:
    def test_concurrent_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "help")
        n_threads, n_incs = 8, 2000

        def worker():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == n_threads * n_incs

    def test_concurrent_histogram_observes(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "help", buckets=(0.5,))
        n_threads, n_obs = 4, 1000

        def worker():
            for _ in range(n_obs):
                h.observe(1.0)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = h.value()
        assert snap["count"] == n_threads * n_obs
        assert snap["sum"] == pytest.approx(n_threads * n_obs)

    def test_concurrent_label_creation(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "help", labels=("w",))
        barrier = threading.Barrier(6)

        def worker(i):
            barrier.wait()
            for _ in range(500):
                c.labels(w=str(i % 2)).inc()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = c.labels(w="0").value() + c.labels(w="1").value()
        assert total == 6 * 500


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_duration(self):
        tr = Tracer()
        with tr.span("work", root=3) as sp:
            sp.set(labels=7)
        (rec,) = tr.records()
        assert rec.name == "work"
        assert rec.kind == "span"
        assert rec.dur is not None and rec.dur >= 0
        assert rec.attrs == {"root": 3, "labels": 7}

    def test_nesting_parentage(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                tr.event("tick")
        by_name = {r.name: r for r in tr.records()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["tick"].parent_id == by_name["inner"].span_id

    def test_event_explicit_ts(self):
        tr = Tracer()
        tr.event("commit", ts=12.5, clock="sim")
        (rec,) = tr.records()
        assert rec.ts == 12.5
        assert rec.attrs["clock"] == "sim"

    def test_ring_buffer_bounded(self):
        tr = Tracer(capacity=3)
        for i in range(10):
            tr.event(f"e{i}")
        names = [r.name for r in tr.records()]
        assert names == ["e7", "e8", "e9"]

    def test_disabled_tracing_is_noop(self):
        with obs.span("work") as sp:
            sp.set(x=1)  # must not raise on the null span
        obs.event("tick")
        assert len(obs.get_tracer()) == 0

    def test_enabled_via_configure(self):
        obs.configure(tracing=True)
        try:
            with obs.span("work"):
                pass
        finally:
            obs.configure(tracing=False)
        assert len(obs.get_tracer()) == 1

    def test_jsonl_round_trip(self, tmp_path):
        tr = Tracer()
        with tr.span("root_search", root=5, worker=0) as sp:
            sp.set(labels=11)
        tr.event("commit", ts=3.5, clock="sim")
        path = str(tmp_path / "trace.jsonl")
        count = obs.write_trace_jsonl(path, tr.records())
        assert count == 2
        back = obs.read_trace_jsonl(path)
        assert [r.to_dict() for r in back] == [
            r.to_dict() for r in tr.records()
        ]

    def test_jsonl_to_file_object(self):
        tr = Tracer()
        tr.event("x")
        buf = io.StringIO()
        obs.write_trace_jsonl(buf, tr.records())
        (line,) = buf.getvalue().strip().splitlines()
        assert json.loads(line)["name"] == "x"

    def test_record_round_trip_dict(self):
        rec = TraceRecord(
            name="n",
            kind="event",
            ts=1.0,
            dur=None,
            span_id=4,
            parent_id=None,
            thread="MainThread",
            attrs={"a": 1},
        )
        assert TraceRecord.from_dict(rec.to_dict()) == rec


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("q_total", "queries", labels=("op",)).labels(
            op="distance"
        ).inc(3)
        reg.gauge("phase_seconds", "time", labels=("phase",)).labels(
            phase="search"
        ).set(1.25)
        text = obs.prometheus_text(reg)
        assert "# HELP q_total queries" in text
        assert "# TYPE q_total counter" in text
        assert 'q_total{op="distance"} 3' in text
        assert 'phase_seconds{phase="search"} 1.25' in text

    def test_histogram_expansion(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = obs.prometheus_text(reg)
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "h", labels=("op",)).labels(
            op='we"ird\\op'
        ).inc()
        text = obs.prometheus_text(reg)
        assert 'op="we\\"ird\\\\op"' in text

    def test_every_sample_line_parses(self):
        # Drive a real build, then sanity-parse the whole exposition.
        graph = gnm_random_graph(40, 100, seed=7)
        from repro.core.index import PLLIndex

        PLLIndex.build(graph)
        for line in obs.prometheus_text().strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            if value != "+Inf":
                float(value)  # must parse


# ----------------------------------------------------------------------
# Instrumented builds
# ----------------------------------------------------------------------
class TestInstrumentedBuild:
    def test_serial_build_populates_metrics(self):
        from repro.core.index import PLLIndex

        graph = gnm_random_graph(40, 100, seed=7)
        PLLIndex.build(graph)
        reg = obs.get_registry()
        assert reg.get("parapll_build_roots_total").value() == 40
        assert reg.get("parapll_build_labels_total").value() > 0
        phases = reg.get("parapll_build_phase_seconds")
        assert phases.labels(phase="search").value() > 0

    def test_threaded_build_worker_roots_sum(self):
        from repro.parallel.threads import build_parallel_threads

        graph = gnm_random_graph(60, 180, seed=3)
        build_parallel_threads(graph, 3, policy="dynamic")
        reg = obs.get_registry()
        workers = reg.get("parapll_worker_roots_total")
        total = sum(
            s.value() for _k, s in workers.series_items()
        )
        assert total == 60
        assert reg.get("parapll_commits_total").value() == 60

    def test_metrics_disabled_leaves_registry_empty(self):
        from repro.core.index import PLLIndex

        graph = gnm_random_graph(30, 60, seed=1)
        obs.configure(metrics=False)
        try:
            PLLIndex.build(graph)
        finally:
            obs.configure(metrics=True)
        assert obs.get_registry().get("parapll_build_roots_total").value() == 0

    def test_cluster_sim_records_sync_metrics(self):
        from repro.cluster.parapll import simulate_cluster

        graph = gnm_random_graph(40, 120, seed=5)
        simulate_cluster(graph, num_nodes=2, threads_per_node=2, syncs=2)
        reg = obs.get_registry()
        assert reg.get("parapll_cluster_sync_rounds_total").value() >= 2
        hist = reg.get("parapll_cluster_sync_entries").value()
        assert hist["count"] >= 2

    def test_render_summary_sections(self):
        from repro.core.index import PLLIndex

        graph = gnm_random_graph(40, 100, seed=7)
        PLLIndex.build(graph)
        text = obs.render_summary()
        assert "build:" in text
        assert "roots searched     40" in text
        assert "prune rate" in text

    def test_render_summary_empty(self):
        assert "(no metrics recorded)" in obs.render_summary(
            MetricsRegistry()
        )

    def test_overhead_within_budget(self):
        # Acceptance: metrics-on build_serial within 10% of metrics-off.
        # Timing in CI is noisy, so assert with a generous 1.5x margin —
        # a per-pop (rather than per-root) instrumentation bug would
        # blow well past that.
        import time

        from repro.core.index import PLLIndex

        graph = gnm_random_graph(300, 1200, seed=11)

        def build_once() -> float:
            t0 = time.perf_counter()
            PLLIndex.build(graph)
            return time.perf_counter() - t0

        build_once()  # warm caches
        obs.configure(metrics=False)
        try:
            off = min(build_once() for _ in range(3))
        finally:
            obs.configure(metrics=True)
        on = min(build_once() for _ in range(3))
        assert on <= off * 1.5 + 0.05


# ----------------------------------------------------------------------
# Instrument helpers
# ----------------------------------------------------------------------
class TestInstrumentHelpers:
    def test_record_request_known_op(self):
        record_request("distance", 0.01, True)
        reg = obs.get_registry()
        c = reg.get("parapll_service_requests_total")
        assert c.labels(op="distance").value() == 1

    def test_record_request_clamps_unknown_op(self):
        # Arbitrary client-supplied op names must not mint new series.
        record_request("teleport", 0.01, False)
        reg = obs.get_registry()
        assert "teleport" not in KNOWN_SERVICE_OPS
        c = reg.get("parapll_service_requests_total")
        assert c.labels(op="unknown").value() == 1
        assert (
            reg.get("parapll_service_errors_total")
            .labels(op="unknown")
            .value()
            == 1
        )


# ----------------------------------------------------------------------
# Timers
# ----------------------------------------------------------------------
class TestTimers:
    def test_phase_timer_accumulates(self):
        reg = MetricsRegistry()
        timer = PhaseTimer(registry=reg)
        with timer.phase("order"):
            pass
        with timer.phase("search"):
            pass
        with timer.phase("search"):
            pass
        report = timer.report()
        assert set(report) == {"order", "search"}
        assert all(v >= 0 for v in report.values())
        assert timer.total == pytest.approx(sum(report.values()))
        # Mirrored into the gauge as well.
        g = reg.get("parapll_build_phase_seconds")
        assert g.labels(phase="search").value() == pytest.approx(
            report["search"]
        )

    def test_sampling_profiler_smoke(self):
        prof = SamplingProfiler(interval=0.001)
        with prof:
            x = 0
            for i in range(200_000):
                x += i
        assert prof.samples >= 0  # may be 0 on a very fast box
        assert isinstance(prof.summary(3), str)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
class TestConfigure:
    def test_configure_partial_update(self):
        before = obs.current_config()
        after = obs.configure(tracing=True)
        assert after.tracing is True
        assert after.metrics == before.metrics

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            obs.configure(trace_capacity=0)

    def test_capacity_follows_config(self):
        obs.configure(trace_capacity=16)
        assert obs.get_tracer().capacity == 16


# ----------------------------------------------------------------------
# Streaming quantiles
# ----------------------------------------------------------------------
class TestQuantiles:
    def test_interpolated_median(self):
        from repro.obs.metrics import histogram_quantile

        reg = MetricsRegistry()
        h = reg.histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            h.observe(value)
        snap = h.value()
        # rank 2 of 4 falls at the boundary of the (1, 2] bucket.
        assert histogram_quantile(snap, 0.5) == pytest.approx(2.0)
        assert h.quantile(0.5) == pytest.approx(2.0)

    def test_uniform_within_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "help", buckets=(10.0,))
        for _ in range(4):
            h.observe(5.0)
        # All mass in (0, 10]: p50 interpolates to the bucket midpoint.
        assert h.quantile(0.5) == pytest.approx(5.0)

    def test_overflow_clamps_to_top_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "help", buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(1.0)

    def test_empty_histogram_nan(self):
        import math

        reg = MetricsRegistry()
        h = reg.histogram("h", "help", buckets=(1.0,))
        assert math.isnan(h.quantile(0.5))

    def test_invalid_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "help", buckets=(1.0,))
        with pytest.raises(ObsError):
            h.quantile(1.5)

    def test_quantiles_batch(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "help", buckets=(1.0, 2.0))
        h.observe(0.5)
        out = h.quantiles((0.5, 0.99))
        assert set(out) == {0.5, 0.99}

    def test_labeled_series_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "help", labels=("op",), buckets=(1.0, 2.0))
        h.labels(op="a").observe(0.5)
        h.labels(op="b").observe(1.5)
        assert h.labels(op="a").quantile(0.5) <= 1.0
        assert h.labels(op="b").quantile(0.5) > 1.0

    def test_render_summary_shows_service_quantiles(self):
        record_request("distance", 0.002, True)
        record_request("distance", 0.004, True)
        text = obs.render_summary()
        assert "latency distance" in text
        assert "p50" in text and "p95" in text and "p99" in text
