"""Smoke tests: the example scripts import and (the quick ones) run."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize(
    "name",
    ["quickstart", "social_search", "road_routing", "cluster_sync",
     "scaling_study", "fleet_telemetry"],
)
def test_example_imports(name):
    mod = load_example(name)
    assert callable(mod.main)


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "agree with Dijkstra" in out


def test_road_routing_runs(capsys):
    load_example("road_routing").main()
    out = capsys.readouterr().out
    assert "bidirectional Dijkstra" in out
