"""Tests for the benchmark suite, BENCH files and the regression gate."""

from __future__ import annotations

import copy
import json

import pytest

from repro import obs
from repro.obs.env import environment_metadata, git_revision
from repro.obs.perf import (
    BENCH_SCHEMA,
    DEFAULT_TOLERANCES,
    PerfError,
    PerfContext,
    Workload,
    default_workloads,
    read_bench,
    render_bench,
    run_suite,
    write_bench,
)
from repro.obs.regression import compare


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    obs.configure(metrics=True, tracing=False, trace_capacity=4096)
    yield
    obs.reset()
    obs.configure(metrics=True, tracing=False, trace_capacity=4096)


def _tiny_suite(**kwargs):
    kwargs.setdefault("repeats", 1)
    kwargs.setdefault("scale", 0.25)
    kwargs.setdefault("tag", "test")
    return run_suite(**kwargs)


@pytest.fixture(scope="module")
def suite_doc():
    obs.reset()
    doc = run_suite(repeats=2, scale=0.25, tag="test")
    obs.reset()
    return doc


def _make_doc(metrics, config=None):
    """A minimal hand-built BENCH document for gate edge cases."""
    return {
        "schema": BENCH_SCHEMA,
        "tag": "hand",
        "environment": {},
        "config": config or {"scale": 1.0, "seed": 42, "dataset": "Gnutella"},
        "workloads": {"wl": {"metrics": metrics}},
    }


def _m(median, kind="counter", tol=0.0):
    return {
        "median": median,
        "min": median,
        "max": median,
        "runs": [median],
        "kind": kind,
        "unit": "x",
        "tol": tol,
    }


class TestEnvironment:
    def test_metadata_keys(self):
        meta = environment_metadata()
        for key in (
            "python",
            "platform",
            "machine",
            "cpu_count",
            "git_sha",
            "timestamp_utc",
        ):
            assert key in meta
        assert meta["timestamp_utc"].endswith("+00:00")

    def test_git_revision_of_repo(self):
        sha = git_revision()
        assert sha is None or len(sha) == 40

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(str(tmp_path)) is None


class TestSuite:
    def test_document_shape(self, suite_doc):
        assert suite_doc["schema"] == BENCH_SCHEMA
        assert suite_doc["tag"] == "test"
        assert suite_doc["config"]["repeats"] == 2
        names = {wl.name for wl in default_workloads()}
        assert set(suite_doc["workloads"]) == names

    def test_every_metric_well_formed(self, suite_doc):
        for wl_name, entry in suite_doc["workloads"].items():
            assert entry["metrics"], wl_name
            for m_name, m in entry["metrics"].items():
                assert m["kind"] in DEFAULT_TOLERANCES, (wl_name, m_name)
                assert m["min"] <= m["median"] <= m["max"]
                assert len(m["runs"]) == 2
                assert m["tol"] >= 0.0

    def test_counters_deterministic_across_repeats(self, suite_doc):
        metrics = suite_doc["workloads"]["serial_build"]["metrics"]
        for name in ("heap_pops", "labels", "prune_hits"):
            runs = metrics[name]["runs"]
            assert runs[0] == runs[1], name

    def test_sim_timeline_fractions(self, suite_doc):
        timeline = suite_doc["workloads"]["sim_build_p4"]["timeline"]
        assert timeline["chain_tasks"] >= 1
        assert 0 < timeline["chain_coverage"] <= 1.0 + 1e-9
        assert timeline["workers"]
        for worker in timeline["workers"]:
            total = worker["busy"] + worker["lock_wait"] + worker["idle"]
            assert total == pytest.approx(1.0)

    def test_document_json_serialisable(self, suite_doc):
        json.dumps(suite_doc)

    def test_invalid_repeats(self):
        with pytest.raises(PerfError):
            run_suite(repeats=0)

    def test_custom_workload_list(self):
        calls = []

        def fn(ctx):
            calls.append(ctx.graph.num_vertices)
            return {
                "v": {"value": 1.0, "kind": "counter", "unit": "x", "tol": 0.0}
            }

        doc = _tiny_suite(workloads=[Workload("only", fn)], repeats=2)
        assert list(doc["workloads"]) == ["only"]
        assert len(calls) == 2

    def test_context_loads_graph(self):
        ctx = PerfContext(scale=0.25, seed=42, dataset="Gnutella")
        assert ctx.graph.num_vertices > 0


class TestBenchIO:
    def test_round_trip(self, suite_doc, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_bench(suite_doc, str(path))
        assert read_bench(str(path)) == suite_doc

    def test_read_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "parapll-bench/99"}))
        with pytest.raises(PerfError):
            read_bench(str(path))

    def test_read_rejects_non_bench(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PerfError):
            read_bench(str(path))

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(PerfError):
            read_bench(str(tmp_path / "nope.json"))

    def test_render_mentions_workloads(self, suite_doc):
        text = render_bench(suite_doc)
        assert "serial_build" in text
        assert "timeline:" in text
        assert "git" in text


class TestGate:
    def test_identical_docs_pass(self, suite_doc):
        report = compare(suite_doc, suite_doc)
        assert report.ok
        assert report.exit_code == 0
        assert not report.regressions

    def test_injected_regression_fails(self, suite_doc):
        current = copy.deepcopy(suite_doc)
        metric = current["workloads"]["serial_build"]["metrics"]["labels"]
        metric["median"] *= 1.5
        report = compare(suite_doc, current)
        assert not report.ok
        assert report.exit_code == 1
        (bad,) = report.regressions
        assert (bad.workload, bad.metric) == ("serial_build", "labels")
        assert bad.status == "regressed"
        assert "FAIL" in report.render()

    def test_missing_metric_fails(self):
        base = _make_doc({"a": _m(10.0), "b": _m(5.0)})
        cur = _make_doc({"a": _m(10.0)})
        report = compare(base, cur)
        assert not report.ok
        (bad,) = report.regressions
        assert bad.status == "missing"
        assert bad.metric == "b"

    def test_new_metric_is_informational(self):
        base = _make_doc({"a": _m(10.0)})
        cur = _make_doc({"a": _m(10.0), "extra": _m(3.0)})
        report = compare(base, cur)
        assert report.ok
        assert report.counts()["new"] == 1

    def test_zero_baseline_growth_regresses(self):
        base = _make_doc({"a": _m(0.0)})
        cur = _make_doc({"a": _m(7.0)})
        report = compare(base, cur)
        assert not report.ok
        (bad,) = report.regressions
        assert bad.ratio is None

    def test_zero_baseline_within_epsilon_unchanged(self):
        # counter epsilon is 0.5: a drift of 0.4 is not a change.
        base = _make_doc({"a": _m(0.0)})
        cur = _make_doc({"a": _m(0.4)})
        assert compare(base, cur).ok

    def test_within_tolerance_noise_unchanged(self):
        base = _make_doc({"t": _m(10.0, kind="time", tol=0.35)})
        cur = _make_doc({"t": _m(12.0, kind="time", tol=0.35)})
        report = compare(base, cur)
        assert report.ok
        assert report.counts()["unchanged"] == 1

    def test_improvement_classified(self):
        base = _make_doc({"t": _m(10.0, kind="time", tol=0.35)})
        cur = _make_doc({"t": _m(5.0, kind="time", tol=0.35)})
        report = compare(base, cur)
        assert report.ok
        assert report.counts()["improved"] == 1

    def test_time_epsilon_absorbs_microjitter(self):
        # 1 ms -> 3 ms is 3x, but below the 5 ms absolute epsilon.
        base = _make_doc({"t": _m(0.001, kind="time", tol=0.35)})
        cur = _make_doc({"t": _m(0.003, kind="time", tol=0.35)})
        assert compare(base, cur).counts()["unchanged"] == 1

    def test_tolerance_scale_loosens_gate(self):
        base = _make_doc({"t": _m(10.0, kind="time", tol=0.35)})
        cur = _make_doc({"t": _m(15.0, kind="time", tol=0.35)})
        assert not compare(base, cur).ok
        assert compare(base, cur, tolerance_scale=2.0).ok

    def test_tolerance_scale_invalid(self):
        doc = _make_doc({"a": _m(1.0)})
        with pytest.raises(PerfError):
            compare(doc, doc, tolerance_scale=0.0)

    def test_ignore_kinds_skips_time(self):
        base = _make_doc(
            {"t": _m(1.0, kind="time", tol=0.0), "c": _m(5.0)}
        )
        cur = _make_doc(
            {"t": _m(9.0, kind="time", tol=0.0), "c": _m(5.0)}
        )
        assert not compare(base, cur).ok
        report = compare(base, cur, ignore_kinds=("time",))
        assert report.ok
        assert len(report.comparisons) == 1

    def test_config_mismatch_raises(self):
        base = _make_doc({"a": _m(1.0)})
        cur = _make_doc(
            {"a": _m(1.0)},
            config={"scale": 0.5, "seed": 42, "dataset": "Gnutella"},
        )
        with pytest.raises(PerfError):
            compare(base, cur)

    def test_invalid_document_raises(self):
        with pytest.raises(PerfError):
            compare({}, {})

    def test_render_verbose_lists_unchanged(self):
        doc = _make_doc({"a": _m(5.0)})
        report = compare(doc, doc)
        assert "unchanged" not in report.render(verbose=False).split("\n", 1)[1]
        assert "[unchanged]" in report.render(verbose=True)


class TestCheckedInBaseline:
    @pytest.fixture()
    def baseline_path(self):
        import os

        here = os.path.dirname(os.path.abspath(__file__))
        return os.path.join(here, "..", "benchmarks", "baseline.json")

    def test_baseline_file_is_valid(self, baseline_path):
        doc = read_bench(baseline_path)
        assert doc["schema"] == BENCH_SCHEMA
        names = {wl.name for wl in default_workloads()}
        assert set(doc["workloads"]) == names

    def test_baseline_self_compare_passes(self, baseline_path):
        doc = read_bench(baseline_path)
        assert compare(doc, doc).ok


class TestExplainOverheadWorkload:
    def test_workload_registered(self):
        names = [w.name for w in default_workloads()]
        assert "explain_overhead" in names

    def test_explain_matches_every_pair(self, suite_doc):
        metrics = suite_doc["workloads"]["explain_overhead"]["metrics"]
        assert metrics["explain_matches"]["median"] == metrics["pairs"]["median"]
        assert metrics["pairs"]["median"] == 100.0

    def test_counters_exact_kind(self, suite_doc):
        metrics = suite_doc["workloads"]["explain_overhead"]["metrics"]
        assert metrics["explain_matches"]["kind"] == "counter"
        assert metrics["plain_query_seconds"]["kind"] == "time"
        assert metrics["explain_seconds"]["kind"] == "time"


class TestBatchQueryWorkload:
    def test_workload_registered(self):
        names = [w.name for w in default_workloads()]
        assert "batch_query" in names

    def test_batch_matches_every_pair(self, suite_doc):
        # The kernel is exact: all 10k batch answers must equal the
        # scalar loop bit-for-bit, every repeat.
        metrics = suite_doc["workloads"]["batch_query"]["metrics"]
        assert metrics["batch_matches"]["median"] == metrics["pairs"]["median"]
        assert metrics["pairs"]["median"] == 10000.0
        assert metrics["batch_matches"]["min"] == metrics["batch_matches"]["max"]

    def test_metric_kinds(self, suite_doc):
        metrics = suite_doc["workloads"]["batch_query"]["metrics"]
        assert metrics["batch_matches"]["kind"] == "counter"
        assert metrics["batch_seconds"]["kind"] == "time"
        assert metrics["scalar_seconds"]["kind"] == "time"
        assert metrics["batch_over_scalar"]["kind"] == "time"
