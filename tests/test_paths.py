"""Tests for shortest-path reconstruction over the index."""

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.index import PLLIndex
from repro.core.paths import reconstruct_shortest_path
from repro.errors import GraphError

from .conftest import build_graph


def path_weight(graph, path):
    return sum(
        graph.edge_weight(u, v) for u, v in zip(path, path[1:])
    )


class TestReconstruction:
    def test_path_graph(self, path_graph):
        index = PLLIndex.build(path_graph)
        assert index.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_triangle_takes_detour(self, triangle):
        index = PLLIndex.build(triangle)
        assert index.shortest_path(0, 2) == [0, 1, 2]

    def test_trivial_path(self, path_graph):
        index = PLLIndex.build(path_graph)
        assert index.shortest_path(2, 2) == [2]

    def test_unreachable_returns_none(self, two_components):
        index = PLLIndex.build(two_components)
        assert index.shortest_path(0, 3) is None

    def test_paths_are_optimal_everywhere(self, random_graph):
        index = PLLIndex.build(random_graph)
        for s in (0, 9):
            truth = dijkstra_sssp(random_graph, s)
            for t in range(0, random_graph.num_vertices, 5):
                path = index.shortest_path(s, t)
                if truth[t] == float("inf"):
                    assert path is None
                    continue
                assert path[0] == s and path[-1] == t
                assert path_weight(random_graph, path) == pytest.approx(
                    truth[t]
                )
                # Simple path: no repeated vertices.
                assert len(set(path)) == len(path)

    def test_adjacent_vertices(self, star_graph):
        index = PLLIndex.build(star_graph)
        assert index.shortest_path(0, 3) == [0, 3]

    def test_leaf_to_leaf_through_hub(self, star_graph):
        index = PLLIndex.build(star_graph)
        assert index.shortest_path(1, 5) == [1, 0, 5]


class TestErrors:
    def test_requires_graph(self, path_graph, tmp_path):
        index = PLLIndex.build(path_graph)
        f = tmp_path / "i.npz"
        index.save(f)
        loaded = PLLIndex.load(f)  # no graph attached
        with pytest.raises(GraphError, match="needs the graph"):
            loaded.shortest_path(0, 3)

    def test_mismatched_graph_detected(self, path_graph):
        index = PLLIndex.build(path_graph)
        other = build_graph(
            [(0, 1, 100.0), (1, 2, 100.0), (2, 3, 100.0)]
        )
        with pytest.raises(GraphError, match="does not match"):
            reconstruct_shortest_path(index, other, 0, 3)

    def test_vertex_out_of_range(self, path_graph):
        index = PLLIndex.build(path_graph)
        with pytest.raises(GraphError):
            index.shortest_path(0, 99)
