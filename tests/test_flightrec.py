"""Tests for repro.obs.flightrec: the last-N event ring and its dumps."""

import io
import json
import os
import signal

import pytest

from repro.errors import CommError, TaskError
from repro.generators.random_graphs import gnm_random_graph
from repro.obs import flightrec
from repro.obs.flightrec import (
    DEFAULT_CAPACITY,
    ENV_DIR,
    FLIGHTREC_SCHEMA,
    FlightRecorder,
    auto_dump,
    dump_events,
    get_recorder,
    install_signal_handler,
)
from repro.parallel.threads import build_parallel_threads


@pytest.fixture(autouse=True)
def clean_recorder():
    get_recorder().clear()
    yield
    get_recorder().clear()


class TestRingBuffer:
    def test_record_and_snapshot(self):
        rec = FlightRecorder(capacity=8)
        rec.record("task_grab", worker=0, root=5)
        rec.record("label_commit", worker=0, root=5, labels=3)
        events = rec.snapshot()
        assert [e["kind"] for e in events] == ["task_grab", "label_commit"]
        assert events[0]["attrs"] == {"worker": 0, "root": 5}
        assert len(rec) == 2

    def test_eviction_keeps_newest(self):
        rec = FlightRecorder(capacity=3)
        for i in range(10):
            rec.record("e", i=i)
        events = rec.snapshot()
        assert len(events) == 3
        assert [e["attrs"]["i"] for e in events] == [7, 8, 9]

    def test_seq_is_monotone_across_eviction(self):
        rec = FlightRecorder(capacity=2)
        for _ in range(5):
            rec.record("e")
        seqs = [e["seq"] for e in rec.snapshot()]
        assert seqs == [4, 5]

    def test_snapshot_last(self):
        rec = FlightRecorder(capacity=8)
        for i in range(5):
            rec.record("e", i=i)
        assert [e["attrs"]["i"] for e in rec.snapshot(last=2)] == [3, 4]
        assert rec.snapshot(last=0) == []
        assert len(rec.snapshot(last=99)) == 5

    def test_clear(self):
        rec = FlightRecorder()
        rec.record("e")
        rec.clear()
        assert rec.snapshot() == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        rec = FlightRecorder()
        with pytest.raises(ValueError):
            rec.set_capacity(-1)

    def test_set_capacity_keeps_newest(self):
        rec = FlightRecorder(capacity=8)
        for i in range(6):
            rec.record("e", i=i)
        rec.set_capacity(2)
        assert rec.capacity == 2
        assert [e["attrs"]["i"] for e in rec.snapshot()] == [4, 5]

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_module_level_record_hits_global(self):
        flightrec.record("custom", x=1)
        events = get_recorder().snapshot()
        assert events[-1]["kind"] == "custom"

    def test_events_have_required_fields(self):
        rec = FlightRecorder()
        rec.record("e")
        (event,) = rec.snapshot()
        assert set(event) == {"seq", "ts", "mono", "kind", "thread", "attrs"}


class TestDump:
    def test_dump_to_path(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        rec.record("a", x=1)
        rec.record("b", y=2)
        out = tmp_path / "dump.jsonl"
        count = rec.dump(out, reason="test")
        assert count == 2
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["schema"] == FLIGHTREC_SCHEMA
        assert header["reason"] == "test"
        assert header["events"] == 2
        assert header["capacity"] == 4
        assert header["pid"] == os.getpid()
        assert [json.loads(x)["kind"] for x in lines[1:]] == ["a", "b"]

    def test_dump_to_file_object(self):
        rec = FlightRecorder()
        rec.record("e")
        buf = io.StringIO()
        rec.dump(buf)
        lines = buf.getvalue().splitlines()
        assert json.loads(lines[0])["schema"] == FLIGHTREC_SCHEMA
        assert len(lines) == 2

    def test_dump_events_for_remote_payloads(self, tmp_path):
        """parapll flightrec dump --port writes wire-fetched events."""
        events = [
            {"seq": 1, "ts": 0.0, "mono": 0.0, "kind": "sync_round",
             "thread": "rank-0", "attrs": {"round": 1}},
        ]
        out = tmp_path / "remote.jsonl"
        count = dump_events(events, out, reason="remote-debug")
        assert count == 1
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["reason"] == "remote-debug"
        assert header["pid"] is None and header["capacity"] is None
        assert json.loads(lines[1])["kind"] == "sync_round"


class TestAutoDump:
    def test_skipped_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_DIR, raising=False)
        flightrec.record("e")
        assert auto_dump("test") is None

    def test_writes_into_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        flightrec.record("e")
        path = auto_dump("unit")
        assert path is not None and os.path.exists(path)
        header = json.loads(open(path).readline())
        assert header["reason"] == "unit"

    def test_explicit_directory_wins(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_DIR, raising=False)
        flightrec.record("e")
        path = auto_dump("unit", directory=str(tmp_path))
        assert path is not None and path.startswith(str(tmp_path))

    def test_write_error_is_swallowed(self, tmp_path, monkeypatch):
        target = tmp_path / "file-not-dir"
        target.write_text("")
        assert auto_dump("unit", directory=str(target)) is None


class _ExplodingEngine:
    """An engine whose first root search dies mid-build."""

    def __init__(self, order):
        self._order = order

    def run(self, root, store):
        raise RuntimeError(f"engine exploded on root {root}")

    def rank_of(self, root):
        return int(self._order.index(root))


class TestFailureDumps:
    def test_worker_failure_dumps_with_root_and_worker(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: killing a worker mid-build leaves a flightrec
        dump whose last events name the failing root and worker."""
        import repro.core.engines as engines

        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        monkeypatch.setattr(
            engines,
            "make_engine",
            lambda kind, graph, order: _ExplodingEngine(list(order)),
        )
        graph = gnm_random_graph(20, 50, seed=3)
        with pytest.raises(RuntimeError) as excinfo:
            build_parallel_threads(graph, 2)
        cause = excinfo.value.__cause__
        assert isinstance(cause, TaskError)
        assert isinstance(cause.worker, int)
        assert cause.root is not None
        dumps = sorted(tmp_path.glob("flightrec-*-worker_failure-*.jsonl"))
        assert dumps
        lines = dumps[-1].read_text().splitlines()
        events = [json.loads(x) for x in lines[1:]]
        failures = [e for e in events if e["kind"] == "worker_failure"]
        assert failures
        # Both workers hit the exploding engine; the dump names each
        # one, including the worker the raised TaskError blames.
        assert any(
            e["attrs"]["worker"] == cause.worker for e in failures
        )
        assert all(e["attrs"]["root"] is not None for e in failures)

    def test_rank_failure_dumps_and_cause_carries_rank(
        self, tmp_path, monkeypatch
    ):
        from repro.cluster.threadcomm import ThreadComm, run_ranks

        monkeypatch.setenv(ENV_DIR, str(tmp_path))

        def program(rank, comm):
            if rank == 1:
                raise ValueError("rank 1 died")
            return rank

        comm = ThreadComm(2, timeout=5.0)
        with pytest.raises(ValueError) as excinfo:
            run_ranks(comm, program)
        cause = excinfo.value.__cause__
        assert isinstance(cause, CommError)
        assert cause.rank == 1
        dumps = sorted(tmp_path.glob("flightrec-*-rank_failure-*.jsonl"))
        assert dumps
        events = [
            json.loads(x)
            for x in dumps[-1].read_text().splitlines()[1:]
        ]
        failures = [e for e in events if e["kind"] == "rank_failure"]
        assert failures and failures[-1]["attrs"]["rank"] == 1


@pytest.mark.skipif(
    not hasattr(signal, "SIGUSR1"), reason="platform lacks SIGUSR1"
)
class TestSignalHandler:
    def test_sigusr1_dumps(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        previous = signal.getsignal(signal.SIGUSR1)
        try:
            assert install_signal_handler()
            flightrec.record("before_signal")
            os.kill(os.getpid(), signal.SIGUSR1)
            dumps = list(tmp_path.glob("flightrec-*-sigusr1-*.jsonl"))
            assert dumps
            events = [
                json.loads(x)
                for x in dumps[0].read_text().splitlines()[1:]
            ]
            assert any(e["kind"] == "before_signal" for e in events)
        finally:
            signal.signal(signal.SIGUSR1, previous)
