"""Tests for the FastTrack-style vector-clock race detector."""

import threading

import pytest

from repro.check import hooks
from repro.check.corpus import run_race_corpus
from repro.check.sanitizer import ENV_FLAG, LocksetSanitizer, enable_from_env
from repro.check.vectorclock import (
    VCTrackedLock,
    VectorClockSanitizer,
    get_vc_sanitizer,
)
from repro.errors import CheckError


@pytest.fixture(autouse=True)
def _isolate_sanitizer():
    previous = hooks.get_active()
    hooks.set_active(None)
    yield
    hooks.set_active(previous)


@pytest.fixture
def vc():
    san = VectorClockSanitizer()
    san.install()
    yield san
    if hooks.get_active() is san:
        san.uninstall()


def _run_named(*specs):
    """Start+join named threads; names keep idents distinguishable."""
    threads = [
        threading.Thread(target=fn, name=name) for name, fn in specs
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestHappensBefore:
    def test_unsynchronized_writes_race(self, vc):
        gate = threading.Barrier(2)

        def bump():
            gate.wait()
            vc.record_access("loc", write=True)

        _run_named(("vc-a", bump), ("vc-b", bump))
        assert not vc.ok
        (report,) = vc.reports
        assert report.location == "loc"
        assert {report.first.thread, report.second.thread} == {
            "vc-a", "vc-b",
        }

    def test_lock_protected_writes_are_ordered(self, vc):
        lock = vc.make_lock("commit")

        def bump():
            for _ in range(50):
                with lock:
                    vc.record_access("loc", write=True)

        _run_named(("vc-a", bump), ("vc-b", bump))
        assert vc.ok, vc.render()

    def test_fork_edge_orders_parent_before_child(self, vc):
        vc.record_access("loc", write=True)

        def child():
            vc.record_access("loc", write=True)

        t = threading.Thread(target=child, name="vc-child")
        hooks.fork(t.name)
        t.start()
        t.join()
        assert vc.ok, vc.render()

    def test_missing_join_edge_is_a_race(self, vc):
        done = threading.Event()

        def child():
            vc.record_access("loc", write=True)
            done.set()

        t = threading.Thread(target=child, name="vc-child")
        hooks.fork(t.name)
        t.start()
        done.wait()
        # Event ordering is real but untracked: still a race.
        vc.record_access("loc", write=False)
        t.join()
        assert not vc.ok

    def test_join_edge_orders_child_before_parent(self, vc):
        def child():
            vc.record_access("loc", write=True)

        t = threading.Thread(target=child, name="vc-child")
        hooks.fork(t.name)
        t.start()
        t.join()
        hooks.join(t.name)
        vc.record_access("loc", write=False)
        assert vc.ok, vc.render()

    def test_send_recv_token_carries_the_clock(self, vc):
        import queue

        q = queue.Queue()

        def producer():
            vc.record_access("payload", write=True)
            q.put(hooks.send("chan"))

        def consumer():
            hooks.recv("chan", q.get())
            vc.record_access("payload", write=True)

        for name, fn in (("vc-p", producer), ("vc-c", consumer)):
            t = threading.Thread(target=fn, name=name)
            hooks.fork(t.name)
            t.start()
            t.join()
            hooks.join(t.name)
        assert vc.ok, vc.render()

    def test_barrier_orders_rounds(self, vc):
        gate = threading.Barrier(2)

        def rank(write_first):
            if write_first:
                vc.record_access("slot", write=True)
            hooks.barrier("sync", "arrive")
            gate.wait()
            hooks.barrier("sync", "depart")
            if not write_first:
                vc.record_access("slot", write=False)

        _run_named(
            ("vc-r0", lambda: rank(True)), ("vc-r1", lambda: rank(False))
        )
        assert vc.ok, vc.render()

    def test_concurrent_reads_never_race(self, vc):
        gate = threading.Barrier(2)

        def reader():
            gate.wait()
            vc.record_access("loc", write=False)

        _run_named(("vc-a", reader), ("vc-b", reader))
        assert vc.ok, vc.render()

    def test_one_report_per_location(self, vc):
        gate = threading.Barrier(2)

        def bump():
            gate.wait()
            for _ in range(20):
                vc.record_access("loc", write=True)

        _run_named(("vc-a", bump), ("vc-b", bump))
        assert len(vc.reports) == 1

    def test_raise_on_race(self):
        with VectorClockSanitizer(raise_on_race=True) as vc:
            gate = threading.Barrier(2)
            boom = []

            def bump():
                gate.wait()
                try:
                    vc.record_access("loc", write=True)
                except CheckError as exc:
                    boom.append(exc)

            _run_named(("vc-a", bump), ("vc-b", bump))
            assert len(boom) == 1
            assert "RACE on loc" in str(boom[0])


class TestCommitOnCompletion:
    """Proposition 1 as a happens-before fact (not a whitelist)."""

    def test_real_threaded_build_is_race_free(self, vc):
        from repro.generators.random_graphs import gnm_random_graph
        from repro.parallel.threads import build_parallel_threads

        graph = gnm_random_graph(40, 100, seed=7)
        for policy in ("static", "dynamic"):
            build_parallel_threads(graph, 3, policy=policy)
        assert vc.ok, vc.render()
        assert vc.accesses_tracked > 0
        assert vc.sync_events > 0  # fork/join edges were exercised

    def test_vc_accepts_what_lockset_would_flag(self):
        """The corpus commit-on-completion pattern: clean under VC,
        flagged by the lockset engine (the whole point of having both).
        """
        commit_pattern = "tests/corpus/races/clean_commit_on_completion.py"

        def run_pattern(sanitizer):
            import importlib.util

            spec = importlib.util.spec_from_file_location(
                "corpus_commit_pattern", commit_pattern
            )
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            with sanitizer:
                module.run()

        vc = VectorClockSanitizer()
        run_pattern(vc)
        assert vc.ok, vc.render()

        lockset = LocksetSanitizer()
        run_pattern(lockset)
        assert not lockset.ok  # over-approximation, documented


class TestCorpus:
    def test_race_corpus_detects_all_seeded_defects(self):
        cases = run_race_corpus("tests/corpus/races")
        assert len(cases) >= 4
        failed = [c for c in cases if not c.ok]
        assert not failed, "\n".join(
            f"{c.path}: expected {c.expect}, got {c.got}\n{c.detail}"
            for c in failed
        )
        # Both polarities are actually present in the corpus.
        assert any(c.expect == 0 for c in cases)
        assert any(c.expect > 0 for c in cases)


class TestLifecycle:
    def test_install_uninstall_and_getter(self):
        san = VectorClockSanitizer()
        assert get_vc_sanitizer() is None
        san.install()
        assert get_vc_sanitizer() is san
        san.uninstall()
        assert get_vc_sanitizer() is None

    def test_lockset_getter_ignores_vc(self, vc):
        from repro.check.sanitizer import get_sanitizer

        assert get_sanitizer() is None

    def test_double_install_rejected(self, vc):
        with pytest.raises(CheckError):
            LocksetSanitizer().install()

    def test_enable_from_env_vc(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "vc")
        san = enable_from_env()
        try:
            assert isinstance(san, VectorClockSanitizer)
            assert enable_from_env() is san  # idempotent
        finally:
            san.uninstall()

    def test_make_lock_dedups_names(self, vc):
        a = vc.make_lock("commit")
        b = vc.make_lock("commit")
        assert isinstance(a, VCTrackedLock)
        assert a.name == "commit"
        assert b.name == "commit#2"

    def test_wrap_store_tracks_writes(self, vc):
        from repro.core.labels import LabelStore

        store = vc.wrap_store(LabelStore(4))
        store.add(0, 1, 2.0)
        assert vc.accesses_tracked > 0
        assert hooks.unwrap_store(store).hubs_of(0) == [1]

    def test_render_mentions_sync_events(self, vc):
        hooks.fork("nobody")
        assert "sync events" in vc.render()
        assert "0 race(s)" in vc.render()
