"""Tests for the ``parapll check`` CLI surface."""

import json
import textwrap

import pytest

from repro.cli import main


@pytest.fixture
def snippet_dir(tmp_path):
    """A fake package tree with one known violation."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        textwrap.dedent(
            """\
            def check(index, truth, t):
                got = index.distance(0, t)
                return got == truth[t]
            """
        )
    )
    return tmp_path


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.npz"
    code = main(
        ["generate", "--dataset", "Gnutella", "--scale", "0.05",
         "--out", str(path)]
    )
    assert code == 0
    return str(path)


class TestCheckLint:
    def test_violation_sets_exit_code(self, snippet_dir, capsys):
        code = main(["check", "lint", str(snippet_dir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "PC003" in out

    def test_json_format(self, snippet_dir, capsys):
        main(["check", "lint", str(snippet_dir), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["violations"][0]["rule"] == "PC003"

    def test_github_format(self, snippet_dir, capsys):
        main(["check", "lint", str(snippet_dir), "--format", "github"])
        assert "::error file=" in capsys.readouterr().out

    def test_rule_subset(self, snippet_dir, capsys):
        code = main(
            ["check", "lint", str(snippet_dir), "--rules", "PC001"]
        )
        assert code == 0  # PC003 not in the selected subset

    def test_unknown_rule_errors(self, snippet_dir, capsys):
        code = main(["check", "lint", str(snippet_dir), "--rules", "PC999"])
        assert code == 1
        assert "unknown rule" in capsys.readouterr().err

    def test_cache_flag(self, snippet_dir, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        main(["check", "lint", str(snippet_dir), "--cache", str(cache)])
        assert cache.exists()
        main(["check", "lint", str(snippet_dir), "--cache", str(cache)])
        assert "from cache" in capsys.readouterr().out

    def test_repo_src_is_clean(self, capsys):
        """`parapll check lint` on the real tree exits 0."""
        code = main(["check", "lint"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 violation(s)" in out


class TestCheckRaces:
    def test_stress_is_race_free(self, capsys):
        code = main(
            ["check", "races", "--threads", "2", "--repeats", "1",
             "--vertices", "40", "--edges", "90"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 race(s)" in out

    def test_lockset_detector_and_cluster(self, capsys):
        code = main(
            ["check", "races", "--threads", "2", "--repeats", "1",
             "--vertices", "40", "--edges", "90",
             "--detector", "lockset", "--cluster"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 race(s)" in out

    def test_json_report(self, tmp_path, capsys):
        out_file = tmp_path / "races.json"
        code = main(
            ["check", "races", "--threads", "2", "--repeats", "1",
             "--vertices", "40", "--edges", "90",
             "--json", "--out", str(out_file)]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["schema"] == "parapll-check/1"
        assert doc["tool"] == "races"
        assert doc["ok"] is True
        assert doc["findings"] == []
        assert doc["stats"]["detector"] == "vc"
        assert json.loads(out_file.read_text()) == doc

    def test_corpus_mode(self, capsys):
        code = main(
            ["check", "races", "--corpus", "tests/corpus/races", "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 0, doc
        assert doc["stats"]["corpus_cases"] >= 4

    def test_corpus_failure_reported(self, tmp_path, capsys):
        bad = tmp_path / "missed_defect.py"
        bad.write_text(
            "EXPECT = 1\n\n\ndef run():\n    pass\n"
        )
        code = main(
            ["check", "races", "--corpus", str(tmp_path), "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["ok"] is False
        assert doc["findings"][0]["rule"] == "CORPUS"


class TestCheckDeadlocks:
    def test_src_is_clean(self, capsys):
        code = main(
            ["check", "deadlocks", "--threads", "2", "--repeats", "1",
             "src", "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 0, doc
        assert doc["tool"] == "deadlocks"
        assert doc["findings"] == []
        assert doc["stats"]["acquisitions"] > 0

    def test_static_only_finds_seeded_inversion(self, tmp_path, capsys):
        (tmp_path / "inverted.py").write_text(
            textwrap.dedent(
                """\
                def f(a_lock, b_lock):
                    with a_lock:
                        with b_lock:
                            pass

                def g(a_lock, b_lock):
                    with b_lock:
                        with a_lock:
                            pass
                """
            )
        )
        code = main(
            ["check", "deadlocks", "--no-stress", str(tmp_path), "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["counts"] == {"DL-ORDER": 1}

    def test_corpus_mode(self, capsys):
        code = main(
            ["check", "deadlocks", "--corpus", "tests/corpus/deadlocks"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "clean" in out


class TestCheckDataflow:
    def test_src_is_clean(self, capsys):
        code = main(["check", "dataflow", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0, doc
        assert doc["tool"] == "dataflow"
        assert doc["findings"] == []
        assert doc["stats"]["files"] > 90

    def test_seeded_violation_reported(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "def worker(store, triples):\n"
            "    store.add_delta(triples)\n"
        )
        code = main(["check", "dataflow", str(tmp_path), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["counts"] == {"PC007": 1}
        assert doc["findings"][0]["kind"] == "lint"

    def test_corpus_mode(self, capsys):
        code = main(
            ["check", "dataflow", "--corpus", "tests/corpus/dataflow"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "clean" in out


class TestCheckIndex:
    def test_build_and_verify(self, graph_file, capsys):
        code = main(
            ["check", "index", "--graph", graph_file, "--threads", "2",
             "--samples", "24"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: PASS" in out

    def test_saved_index(self, graph_file, tmp_path, capsys):
        idx = tmp_path / "g.index.npz"
        main(["index", "--graph", graph_file, "--out", str(idx)])
        capsys.readouterr()
        code = main(
            ["check", "index", "--index", str(idx), "--graph", graph_file,
             "--samples", "16", "--strict"]
        )
        out = capsys.readouterr().out
        assert code == 0, out

    def test_requires_some_input(self, capsys):
        code = main(["check", "index"])
        assert code == 1
        assert "needs" in capsys.readouterr().err
