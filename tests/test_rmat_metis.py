"""Tests for the R-MAT generator and the METIS format."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.generators.rmat import rmat_graph
from repro.graph.validate import check_graph
from repro.io.metis import read_metis, write_metis

from .conftest import build_graph


class TestRmat:
    def test_valid_and_connected(self):
        g = rmat_graph(7, edge_factor=6, seed=1)
        check_graph(g)
        assert g.is_connected()
        assert g.num_vertices <= 128

    def test_deterministic(self):
        assert rmat_graph(6, seed=5) == rmat_graph(6, seed=5)

    def test_seed_matters(self):
        assert rmat_graph(6, seed=1) != rmat_graph(6, seed=2)

    def test_skewed_degrees(self):
        g = rmat_graph(9, edge_factor=8, seed=0)
        assert g.degrees.max() > 4 * np.median(g.degrees)

    def test_balanced_quadrants_less_skewed(self):
        skewed = rmat_graph(8, seed=3)
        uniform = rmat_graph(8, a=0.25, b=0.25, c=0.25, seed=3)
        assert skewed.degrees.max() >= uniform.degrees.max()

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(0)
        with pytest.raises(ValueError):
            rmat_graph(30)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(5, a=0.9, b=0.2, c=0.2)

    def test_pll_works_on_rmat(self):
        from repro.baselines.dijkstra import dijkstra_sssp
        from repro.core.index import PLLIndex

        g = rmat_graph(6, seed=2)
        index = PLLIndex.build(g)
        truth = dijkstra_sssp(g, 0)
        for t in range(g.num_vertices):
            assert index.distance(0, t) == truth[t]


class TestMetis:
    def test_roundtrip(self, random_graph):
        buf = io.StringIO()
        write_metis(random_graph, buf)
        buf.seek(0)
        back = read_metis(buf)
        assert back == random_graph

    def test_unweighted_fmt0(self):
        text = "% tiny\n3 2\n2 3\n1\n1\n"
        g = read_metis(io.StringIO(text))
        assert g.num_edges == 2
        assert g.edge_weight(0, 1) == 1.0

    def test_weighted_fmt1(self):
        text = "3 2 1\n2 5 3 7\n1 5\n1 7\n"
        g = read_metis(io.StringIO(text))
        assert g.edge_weight(0, 1) == 5.0
        assert g.edge_weight(0, 2) == 7.0

    def test_missing_header(self):
        with pytest.raises(GraphFormatError, match="header"):
            read_metis(io.StringIO("% only comments\n"))

    def test_bad_fmt(self):
        with pytest.raises(GraphFormatError, match="fmt"):
            read_metis(io.StringIO("2 1 11\n2\n1\n"))

    def test_edge_count_mismatch(self):
        with pytest.raises(GraphFormatError, match="declares"):
            read_metis(io.StringIO("3 5 0\n2\n1\n\n"))

    def test_neighbour_out_of_range(self):
        with pytest.raises(GraphFormatError, match="out of range"):
            read_metis(io.StringIO("2 1 0\n5\n1\n"))

    def test_odd_weighted_fields(self):
        with pytest.raises(GraphFormatError, match="odd field"):
            read_metis(io.StringIO("2 1 1\n2\n1 3\n"))

    def test_too_many_lines(self):
        with pytest.raises(GraphFormatError, match="adjacency lines"):
            read_metis(io.StringIO("1 0 0\n\n\n2\n"))

    def test_empty_graph(self):
        g = build_graph([], n=3)
        buf = io.StringIO()
        write_metis(g, buf)
        buf.seek(0)
        assert read_metis(buf).num_vertices == 3
