"""Tests for the Eraser-style lockset race sanitizer."""

import threading

import pytest

from repro.check import hooks
from repro.check.sanitizer import (
    ENV_FLAG,
    LocksetSanitizer,
    TrackedLock,
    enable_from_env,
    get_sanitizer,
    stress_threads,
)
from repro.core.labels import LabelStore
from repro.errors import CheckError


@pytest.fixture(autouse=True)
def _isolate_sanitizer():
    """Detach any ambient sanitizer (e.g. PARAPLL_SANITIZE=1 in CI).

    These tests install their own engines — including ones that must
    observe deliberate races — which would otherwise collide with or
    pollute the session-wide sanitizer.
    """
    previous = hooks.get_active()
    hooks.set_active(None)
    yield
    hooks.set_active(previous)


@pytest.fixture
def sanitizer():
    """An installed sanitizer, uninstalled again afterwards."""
    san = LocksetSanitizer()
    san.install()
    yield san
    if hooks.get_active() is san:
        san.uninstall()


def _run_threads(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestHooksInactive:
    def test_make_lock_is_plain_lock(self):
        lock = hooks.make_lock("test")
        assert not isinstance(lock, TrackedLock)
        with lock:
            pass

    def test_wrap_store_is_identity(self):
        store = LabelStore(4)
        assert hooks.wrap_store(store) is store
        assert hooks.unwrap_store(store) is store

    def test_access_is_noop(self):
        hooks.access("anywhere", write=True)


class TestRaceDetection:
    def test_unlocked_concurrent_writes_are_reported(self, sanitizer):
        """The deliberate-race case: two threads, no lock, one store."""
        store = sanitizer.wrap_store(LabelStore(8))

        def hammer(base):
            for i in range(300):
                store.add(i % 8, base + i, float(i))

        _run_threads(lambda: hammer(0), lambda: hammer(10_000))
        assert not sanitizer.ok
        (report,) = sanitizer.reports
        assert "LabelStore" in report.location
        # Both stacks are captured for the postmortem.
        assert report.first.stack and report.second.stack
        assert "hammer" in "".join(report.second.stack)

    def test_locked_writes_are_clean(self, sanitizer):
        store = sanitizer.wrap_store(LabelStore(8))
        lock = sanitizer.make_lock("commit")

        def hammer(base):
            for i in range(300):
                with lock:
                    store.add(i % 8, base + i, float(i))

        _run_threads(lambda: hammer(0), lambda: hammer(10_000))
        assert sanitizer.ok, sanitizer.render()

    def test_inconsistent_locks_are_reported(self, sanitizer):
        """Each thread locks — but different locks: still a race."""
        store = sanitizer.wrap_store(LabelStore(8))
        lock_a = sanitizer.make_lock("a")
        lock_b = sanitizer.make_lock("b")

        def hammer(lock, base):
            for i in range(300):
                with lock:
                    store.add(i % 8, base + i, float(i))

        _run_threads(
            lambda: hammer(lock_a, 0), lambda: hammer(lock_b, 10_000)
        )
        assert not sanitizer.ok

    def test_single_thread_never_races(self, sanitizer):
        store = sanitizer.wrap_store(LabelStore(4))
        for i in range(100):
            store.add(i % 4, i, float(i))
        assert sanitizer.ok

    def test_each_location_reported_once(self, sanitizer):
        store = sanitizer.wrap_store(LabelStore(8))

        def hammer(base):
            for i in range(300):
                store.add(i % 8, base + i, float(i))

        _run_threads(lambda: hammer(0), lambda: hammer(10_000))
        _run_threads(lambda: hammer(20_000), lambda: hammer(30_000))
        assert len(sanitizer.reports) == 1


class TestWrappedStore:
    def test_wrapper_delegates_reads_and_writes(self, sanitizer):
        inner = LabelStore(4)
        store = sanitizer.wrap_store(inner)
        store.add(0, 1, 2.5)
        assert store.hubs_of(0) == [1]
        assert store.dists_of(0) == [2.5]
        assert store.n == 4
        assert hooks.unwrap_store(store) is inner

    def test_threaded_build_results_unaffected(self, sanitizer):
        """Sanitized and plain builds produce identical finalized labels."""
        from repro.baselines.dijkstra import dijkstra_sssp
        from repro.core.paths import isclose_distance
        from repro.generators.random_graphs import gnm_random_graph
        from repro.parallel.threads import build_parallel_threads

        graph = gnm_random_graph(40, 100, seed=7)
        index = build_parallel_threads(graph, 3, policy="dynamic")
        truth = dijkstra_sssp(graph, 0)
        for t in range(graph.num_vertices):
            assert isclose_distance(index.distance(0, t), truth[t])
        assert sanitizer.ok, sanitizer.render()


class TestClusterPath:
    """The simulated-cluster thread backend under the lockset engine."""

    def test_cluster_threads_run_clean(self, sanitizer):
        from repro.cluster.runner import run_cluster_threads
        from repro.generators.random_graphs import gnm_random_graph

        graph = gnm_random_graph(30, 80, seed=3)
        index = run_cluster_threads(graph, 3, syncs=2)
        assert index.avg_label_size() > 0
        assert sanitizer.ok, sanitizer.render()

    def test_seeded_unlocked_write_is_caught(self, sanitizer):
        """A deliberate unlocked shared write alongside the (clean)
        cluster build must still surface — the ThreadComm sync traffic
        must not wash the race out."""
        from repro.cluster.runner import run_cluster_threads
        from repro.generators.random_graphs import gnm_random_graph

        graph = gnm_random_graph(30, 80, seed=3)
        both = threading.Barrier(2)

        def rogue():
            both.wait()
            for _ in range(5):
                hooks.access("cluster.seeded-defect", write=True)

        rogues = [
            threading.Thread(target=rogue, name=f"rogue-{i}")
            for i in range(2)
        ]
        for t in rogues:
            t.start()
        run_cluster_threads(graph, 3, syncs=2)
        for t in rogues:
            t.join()
        assert not sanitizer.ok
        assert any(
            "cluster.seeded-defect" in r.location
            for r in sanitizer.reports
        )


class TestStress:
    def test_stress_threads_is_race_free(self):
        result = stress_threads(num_threads=4, repeats=1, n=80, m=240)
        assert result.builds == 2  # one per policy
        assert result.sanitizer.ok, result.sanitizer.render()
        # The commit path was actually exercised under tracking.
        assert result.sanitizer.access_count > 0

    def test_stress_threads_cluster_flag(self):
        result = stress_threads(
            num_threads=2, repeats=1, n=60, m=150, cluster=True
        )
        assert result.builds == 3  # static + dynamic + cluster
        assert result.sanitizer.ok, result.sanitizer.render()

    def test_stress_accepts_a_vector_clock_engine(self):
        from repro.check.vectorclock import VectorClockSanitizer

        result = stress_threads(
            num_threads=2, repeats=1, n=60, m=150,
            sanitizer=VectorClockSanitizer(),
        )
        assert result.sanitizer.ok, result.sanitizer.render()
        assert result.sanitizer.sync_events > 0


class TestLifecycle:
    def test_install_uninstall(self):
        san = LocksetSanitizer()
        assert get_sanitizer() is None
        san.install()
        assert get_sanitizer() is san
        san.uninstall()
        assert get_sanitizer() is None

    def test_double_install_rejected(self, sanitizer):
        with pytest.raises(CheckError):
            LocksetSanitizer().install()

    def test_context_manager(self):
        with LocksetSanitizer() as san:
            assert get_sanitizer() is san
        assert get_sanitizer() is None

    def test_enable_from_env_falsy(self, monkeypatch):
        for value in ("", "0", "false", "no"):
            monkeypatch.setenv(ENV_FLAG, value)
            assert enable_from_env() is None

    def test_enable_from_env_truthy(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        san = enable_from_env()
        try:
            assert san is not None
            assert get_sanitizer() is san
            assert enable_from_env() is san  # idempotent
        finally:
            san.uninstall()

    def test_tracked_lock_reentrancy_and_release(self, sanitizer):
        lock = sanitizer.make_lock("re")
        assert isinstance(lock, TrackedLock)
        lock.acquire()
        lock.release()
        with lock:
            sanitizer.record_access("loc", write=True)
        assert sanitizer.ok

    def test_make_lock_dedups_same_name(self, sanitizer):
        """Two instances behind one name must stay distinguishable —
        aliased names would let lock A 'protect' accesses under lock B
        (and fabricate lock-order cycles in the deadlock recorder)."""
        a = sanitizer.make_lock("oracle._cache_lock")
        b = sanitizer.make_lock("oracle._cache_lock")
        assert a.name == "oracle._cache_lock"
        assert b.name == "oracle._cache_lock#2"
        assert a.lock_id != b.lock_id
