"""Tests for k-nearest-neighbour queries over inverted labels."""

import math
import random

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.index import PLLIndex
from repro.core.knn import KNNIndex
from repro.errors import GraphError


def brute_force_knn(graph, s, k, include_self=False):
    dist = dijkstra_sssp(graph, s)
    items = [
        (d, v)
        for v, d in enumerate(dist)
        if d != math.inf and (include_self or v != s)
    ]
    items.sort()
    return [(v, d) for d, v in items[:k]]


@pytest.fixture
def knn(random_graph):
    return KNNIndex(PLLIndex.build(random_graph).store)


class TestKNearest:
    def test_matches_brute_force_distances(self, random_graph, knn):
        for s in (0, 7, 21):
            got = knn.k_nearest(s, 5)
            want = brute_force_knn(random_graph, s, 5)
            assert [d for _v, d in got] == [d for _v, d in want]

    def test_exact_distances_returned(self, random_graph, knn):
        truth = dijkstra_sssp(random_graph, 3)
        for v, d in knn.k_nearest(3, 10):
            assert d == truth[v]

    def test_include_self(self, random_graph, knn):
        got = knn.k_nearest(4, 3, include_self=True)
        assert got[0] == (4, 0.0)

    def test_excludes_self_by_default(self, random_graph, knn):
        got = knn.k_nearest(4, 5)
        assert all(v != 4 for v, _d in got)

    def test_k_zero(self, knn):
        assert knn.k_nearest(0, 0) == []

    def test_k_larger_than_component(self, two_components):
        knn = KNNIndex(PLLIndex.build(two_components).store)
        got = knn.k_nearest(0, 10)
        assert got == [(1, 1.0)]

    def test_sorted_output(self, knn):
        got = knn.k_nearest(1, 12)
        dists = [d for _v, d in got]
        assert dists == sorted(dists)

    def test_invalid_inputs(self, knn):
        with pytest.raises(GraphError):
            knn.k_nearest(999, 3)
        with pytest.raises(GraphError):
            knn.k_nearest(0, -1)

    def test_many_random_queries(self, random_graph, knn):
        rng = random.Random(0)
        for _ in range(15):
            s = rng.randrange(random_graph.num_vertices)
            k = rng.randint(1, 8)
            got = knn.k_nearest(s, k)
            want = brute_force_knn(random_graph, s, k)
            assert [d for _v, d in got] == [d for _v, d in want]


class TestWithinRadius:
    def test_matches_brute_force(self, random_graph, knn):
        truth = dijkstra_sssp(random_graph, 5)
        got = knn.within_radius(5, 7.0)
        want = sorted(
            (d, v)
            for v, d in enumerate(truth)
            if v != 5 and d <= 7.0
        )
        assert sorted((d, v) for v, d in got) == want

    def test_zero_radius(self, knn):
        assert knn.within_radius(2, 0.0) == []

    def test_radius_covers_component(self, two_components):
        knn = KNNIndex(PLLIndex.build(two_components).store)
        got = knn.within_radius(0, 100.0)
        assert got == [(1, 1.0)]


class TestStructure:
    def test_top_hub_has_big_inverted_list(self, random_graph, knn):
        assert knn.hub_list_size(0) > knn.hub_list_size(
            random_graph.num_vertices - 1
        )

    def test_num_vertices(self, random_graph, knn):
        assert knn.num_vertices == random_graph.num_vertices
