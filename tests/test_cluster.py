"""Tests for cluster ParaPLL (Algorithm 3) over the simulated cluster."""

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.cluster.network import NetworkModel
from repro.cluster.parapll import simulate_cluster
from repro.core.serial import build_serial
from repro.errors import SimulationError

FAST_NET = NetworkModel(latency_units=10.0, per_entry_units=0.01)


def assert_exact(graph, index, sources=(0,)):
    for s in sources:
        truth = dijkstra_sssp(graph, s)
        for t in range(graph.num_vertices):
            assert index.distance(s, t) == truth[t], (s, t)


class TestCorrectness:
    @pytest.mark.parametrize("q", [1, 2, 4])
    def test_exact_any_cluster_size(self, random_graph, q):
        index, _run = simulate_cluster(
            random_graph, q, threads_per_node=2, syncs=1, network=FAST_NET
        )
        assert_exact(random_graph, index, sources=(0, 9))

    @pytest.mark.parametrize("c", [1, 2, 5])
    def test_exact_any_sync_count(self, random_graph, c):
        index, _run = simulate_cluster(
            random_graph, 3, threads_per_node=2, syncs=c, network=FAST_NET
        )
        assert_exact(random_graph, index)

    @pytest.mark.parametrize("schedule", ["uniform", "early"])
    def test_exact_any_schedule(self, random_graph, schedule):
        index, _run = simulate_cluster(
            random_graph,
            3,
            threads_per_node=2,
            syncs=3,
            sync_schedule=schedule,
            network=FAST_NET,
        )
        assert_exact(random_graph, index)

    def test_exact_with_replication(self, random_graph):
        index, _run = simulate_cluster(
            random_graph,
            3,
            threads_per_node=2,
            syncs=2,
            replicate_top=8,
            network=FAST_NET,
        )
        assert_exact(random_graph, index)

    @pytest.mark.parametrize("policy", ["static", "dynamic"])
    def test_exact_both_policies(self, random_graph, policy):
        index, _run = simulate_cluster(
            random_graph, 2, threads_per_node=3, policy=policy,
            network=FAST_NET, jitter=0.2, worker_jitter=0.2, seed=4,
        )
        assert_exact(random_graph, index)

    def test_single_node_single_thread_is_serial(self, random_graph):
        index, _run = simulate_cluster(
            random_graph, 1, threads_per_node=1, syncs=1, network=FAST_NET
        )
        serial_store, _ = build_serial(random_graph)
        assert index.store == serial_store


class TestShapes:
    def test_labels_grow_with_nodes(self, medium_graph):
        sizes = []
        for q in (1, 2, 4):
            index, _ = simulate_cluster(
                medium_graph, q, threads_per_node=1, syncs=1, network=FAST_NET
            )
            sizes.append(index.store.total_entries)
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_more_syncs_shrink_labels(self, medium_graph):
        few, _ = simulate_cluster(
            medium_graph, 4, threads_per_node=1, syncs=1, network=FAST_NET
        )
        many, _ = simulate_cluster(
            medium_graph, 4, threads_per_node=1, syncs=8, network=FAST_NET
        )
        assert many.store.total_entries < few.store.total_entries

    def test_more_syncs_cost_more_communication(self, medium_graph):
        net = NetworkModel(latency_units=100.0, per_entry_units=0.01)
        _i1, r1 = simulate_cluster(
            medium_graph, 4, threads_per_node=1, syncs=1, network=net
        )
        _i8, r8 = simulate_cluster(
            medium_graph, 4, threads_per_node=1, syncs=8, network=net
        )
        assert r8.communication_time > r1.communication_time

    def test_single_node_has_no_comm(self, random_graph):
        _idx, run = simulate_cluster(
            random_graph, 1, threads_per_node=2, syncs=3, network=FAST_NET
        )
        assert run.communication_time == 0.0

    def test_replication_shrinks_labels(self, medium_graph):
        plain, _ = simulate_cluster(
            medium_graph, 4, threads_per_node=1, syncs=1, network=FAST_NET
        )
        rep, _ = simulate_cluster(
            medium_graph, 4, threads_per_node=1, syncs=1,
            replicate_top=10, network=FAST_NET,
        )
        assert rep.store.total_entries < plain.store.total_entries


class TestAccounting:
    def test_result_fields(self, random_graph):
        index, run = simulate_cluster(
            random_graph, 3, threads_per_node=2, syncs=2, network=FAST_NET
        )
        assert run.num_nodes == 3
        assert run.threads_per_node == 2
        assert run.syncs == 2
        assert len(run.per_node_clock) == 3
        assert len(run.per_sync_entries) == 2
        assert run.makespan >= max(run.per_node_clock) - 1e-9
        assert index.stats.build_seconds == run.makespan

    def test_all_clocks_aligned_at_end(self, random_graph):
        _idx, run = simulate_cluster(
            random_graph, 3, threads_per_node=2, syncs=2,
            network=FAST_NET, jitter=0.3, seed=1,
        )
        assert max(run.per_node_clock) - min(run.per_node_clock) < 1e-9

    def test_per_root_stats_cover_all_roots(self, random_graph):
        index, _run = simulate_cluster(
            random_graph, 2, threads_per_node=2, syncs=1, network=FAST_NET
        )
        assert len(index.stats.per_root) == random_graph.num_vertices

    def test_deterministic(self, random_graph):
        a = simulate_cluster(
            random_graph, 3, threads_per_node=2, syncs=2,
            network=FAST_NET, jitter=0.2, seed=9,
        )
        b = simulate_cluster(
            random_graph, 3, threads_per_node=2, syncs=2,
            network=FAST_NET, jitter=0.2, seed=9,
        )
        assert a[1].makespan == b[1].makespan
        assert a[0].store == b[0].store


class TestValidation:
    def test_zero_nodes(self, random_graph):
        with pytest.raises(SimulationError):
            simulate_cluster(random_graph, 0)

    def test_zero_syncs(self, random_graph):
        with pytest.raises(SimulationError):
            simulate_cluster(random_graph, 2, syncs=0)

    def test_negative_replication(self, random_graph):
        with pytest.raises(SimulationError):
            simulate_cluster(random_graph, 2, replicate_top=-1)
