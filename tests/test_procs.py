"""Tests for the process-based ParaPLL backend (real multi-core builds).

The equivalence suite mirrors ``tests/test_threads.py``: Proposition 1
says any schedule — including the procs backend's coarser task-boundary
visibility — yields exact query answers, and ``p=1`` must reproduce the
serial label set exactly.  On top of that, the worker-lifecycle suite
exercises failure propagation (a child exception surfaces as the
original error ``from`` a ``TaskError`` naming worker and root), the
fail-fast stop (a poisoned root aborts the build within about one root
of work per worker), and the chaos case: a worker SIGKILLed mid-build
must produce a clean ``TaskError``, never a hang.

Engine injection works by monkeypatching ``repro.core.engines
.make_engine`` before the build: workers are forked from the patched
parent, so they inherit the patched registry.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core import engines
from repro.core.index import PLLIndex
from repro.core.serial import build_serial
from repro.errors import GraphError, TaskError
from repro.generators.random_graphs import gnm_random_graph
from repro.parallel.procs import build_parallel_procs
from repro.parallel.shm import GrowableLabelLog, LabelLog, SharedGraph

#: The chaos tests depend on fork semantics (inherited monkeypatches,
#: process sentinels); the whole module is Linux/fork-oriented.
pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="procs backend tests require the fork start method",
)


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------
class TestSharedMemory:
    def test_graph_roundtrip(self, random_graph):
        shared = SharedGraph.export(random_graph)
        try:
            attached = SharedGraph.attach(shared.meta)
            try:
                g = attached.graph
                assert g.num_vertices == random_graph.num_vertices
                assert np.array_equal(g.indptr, random_graph.indptr)
                assert np.array_equal(g.indices, random_graph.indices)
                assert np.array_equal(g.weights, random_graph.weights)
            finally:
                attached.close()
        finally:
            shared.close(unlink=True)

    def test_label_log_commit_visibility(self):
        log = GrowableLabelLog(capacity=4)
        try:
            reader = LabelLog.attach(log.meta)
            assert reader.committed == 0
            log.append(
                np.array([3, 5], dtype=np.int64),
                np.array([0, 0], dtype=np.int64),
                np.array([1.5, 2.5]),
            )
            assert reader.committed == 2
            verts, hubs, dists = reader.read(0, 2)
            assert verts.tolist() == [3, 5]
            assert hubs.tolist() == [0, 0]
            assert dists.tolist() == [1.5, 2.5]
            reader.close()
        finally:
            log.close_all()

    def test_label_log_growth_keeps_entries_and_indices(self):
        log = GrowableLabelLog(capacity=2)
        try:
            for i in range(10):
                log.append(
                    np.array([i], dtype=np.int64),
                    np.array([i % 3], dtype=np.int64),
                    np.array([float(i)]),
                )
            assert log.generations > 1
            assert log.committed == 10
            reader = LabelLog.attach(log.meta)
            verts, hubs, dists = reader.read(0, 10)
            assert verts.tolist() == list(range(10))
            assert dists.tolist() == [float(i) for i in range(10)]
            reader.close()
        finally:
            log.close_all()


# ----------------------------------------------------------------------
# Equivalence with the serial build (Proposition 1)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["static", "dynamic"])
@pytest.mark.parametrize("procs", [1, 2, 4])
def test_exact_distances(random_graph, policy, procs):
    """Any process schedule yields exact query answers."""
    index = build_parallel_procs(random_graph, procs, policy=policy)
    for s in (0, 13, 29):
        truth = dijkstra_sssp(random_graph, s)
        for t in range(random_graph.num_vertices):
            assert index.distance(s, t) == truth[t]


def test_single_proc_matches_serial_exactly(random_graph):
    """p=1 commits each root before dispatching the next: the parallel
    backend degenerates to the serial algorithm, identical label sets."""
    index = build_parallel_procs(random_graph, 1, policy="dynamic")
    serial_store, _ = build_serial(random_graph)
    assert index.store == serial_store


def test_query_exact_on_random_pairs(medium_graph):
    serial = PLLIndex.build(medium_graph)
    index = build_parallel_procs(medium_graph, 4, policy="dynamic", chunk=2)
    rng = np.random.default_rng(0)
    pairs = rng.integers(0, medium_graph.num_vertices, size=(300, 2))
    assert np.allclose(
        serial.distance_batch(pairs),
        index.distance_batch(pairs),
        equal_nan=True,
    )


def test_every_label_entry_is_a_true_distance(medium_graph):
    """Redundant labels allowed; every entry must be a true distance."""
    index = build_parallel_procs(medium_graph, 4, policy="dynamic")
    order = index.order
    for v in range(0, medium_graph.num_vertices, 17):
        for hub_rank, dist in index.store.entries_of(v):
            hub = int(order[hub_rank])
            truth = dijkstra_sssp(medium_graph, hub)
            assert truth[v] == dist


def test_stats_recorded(random_graph):
    index = build_parallel_procs(random_graph, 2)
    assert index.stats is not None
    assert index.stats.build_seconds > 0
    assert index.stats.total_entries == index.store.total_entries


def test_invalid_proc_count(random_graph):
    with pytest.raises(TaskError):
        build_parallel_procs(random_graph, 0)


def test_invalid_policy(random_graph):
    with pytest.raises(TaskError):
        build_parallel_procs(random_graph, 2, policy="nope")


def test_disconnected_graph(two_components):
    index = build_parallel_procs(two_components, 2)
    assert index.distance(0, 1) == 1.0
    assert index.distance(0, 2) == float("inf")


def test_build_parallel_dispatch(random_graph):
    """PLLIndex.build_parallel routes to the right backend."""
    serial_store, _ = build_serial(random_graph)
    for backend in ("threads", "procs"):
        index = PLLIndex.build_parallel(random_graph, 1, backend=backend)
        assert index.store == serial_store
    with pytest.raises(GraphError):
        PLLIndex.build_parallel(random_graph, 1, backend="fibers")


# ----------------------------------------------------------------------
# Worker lifecycle: failure propagation, fail-fast, chaos
# ----------------------------------------------------------------------
class _PoisonEngine:
    """Wraps a real engine; raises (or kills the process) on one root.

    ``counter``, when given, is a ``multiprocessing.Value`` bumped once
    per attempted root across all workers — the fail-fast probes read
    it from the parent after the build dies.
    """

    def __init__(self, inner, poison, counter=None, kill=False):
        self._inner = inner
        self._poison = poison
        self._counter = counter
        self._kill = kill

    def run(self, root, store, stats=None):
        if self._counter is not None:
            with self._counter.get_lock():
                self._counter.value += 1
        if root == self._poison:
            if self._kill:
                os.kill(os.getpid(), signal.SIGKILL)
            raise ValueError(f"poisoned root {root}")
        if stats is None:
            return self._inner.run(root, store)
        return self._inner.run(root, store, stats)

    def rank_of(self, v):
        return self._inner.rank_of(v)

    def commit(self, root, delta, store):
        return self._inner.commit(root, delta, store)


def _patch_poison(monkeypatch, poison_index, counter=None, kill=False):
    """Patch the engine registry with a poisoned wrapper (fork-visible)."""
    real = engines.make_engine

    def patched(kind, graph, order, **kwargs):
        poison = int(list(order)[poison_index])
        return _PoisonEngine(
            real(kind, graph, order, **kwargs),
            poison,
            counter=counter,
            kill=kill,
        )

    monkeypatch.setattr(engines, "make_engine", patched)


def test_failure_propagation(random_graph, monkeypatch):
    """A child exception re-raises in the parent, from a TaskError that
    names the worker and the root — the thread backend's shape."""
    _patch_poison(monkeypatch, poison_index=5)
    with pytest.raises(ValueError, match="poisoned root") as excinfo:
        build_parallel_procs(random_graph, 2, timeout=60.0)
    cause = excinfo.value.__cause__
    assert isinstance(cause, TaskError)
    assert cause.worker in (0, 1)
    assert cause.root is not None
    assert cause.failures >= 1


def test_fail_fast_aborts_promptly(random_graph, monkeypatch):
    """After the first failure the survivors stop at their next task
    boundary: nowhere near the full root set gets indexed."""
    n = random_graph.num_vertices
    counter = multiprocessing.Value("i", 0)
    _patch_poison(monkeypatch, poison_index=4, counter=counter)
    with pytest.raises(ValueError):
        build_parallel_procs(random_graph, 4, timeout=60.0)
    # Poison sits at index 4: the roots before it, the poison itself,
    # and a couple of dispatch races per surviving worker — far below
    # the n roots an un-cancelled build would burn.
    assert counter.value <= 4 + 1 + 3 * 4
    assert counter.value < n // 2


def test_sigkilled_worker_is_a_clean_error_not_a_hang(
    random_graph, monkeypatch
):
    """Chaos: SIGKILL one worker mid-build; the parent must notice via
    the process sentinel and raise a TaskError naming the worker."""
    _patch_poison(monkeypatch, poison_index=7, kill=True)
    with pytest.raises(TaskError) as excinfo:
        build_parallel_procs(random_graph, 2, timeout=60.0)
    err = excinfo.value
    assert "died" in str(err)
    assert err.worker in (0, 1)
    assert err.exitcode == -signal.SIGKILL


def test_larger_graph_many_procs():
    g = gnm_random_graph(150, 450, seed=3)
    index = build_parallel_procs(g, 6, policy="dynamic", chunk=3)
    truth = dijkstra_sssp(g, 0)
    for t in range(g.num_vertices):
        assert index.distance(0, t) == truth[t]


# ----------------------------------------------------------------------
# Fork-boundary telemetry
# ----------------------------------------------------------------------
def test_buildmon_sees_every_root(random_graph):
    from repro.obs import buildmon

    monitor = buildmon.BuildMonitor(total_roots=random_graph.num_vertices)
    with buildmon.monitored(monitor):
        build_parallel_procs(random_graph, 2)
    snap = monitor.snapshot()
    assert snap["roots_done"] == random_graph.num_vertices


def test_worker_telemetry_relays_to_collector(random_graph):
    """Workers open RelayClients: the parent's collector sees one
    source per worker rank, with frames delivered."""
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.relay import Collector

    with Collector(registry=MetricsRegistry()) as collector:
        build_parallel_procs(
            random_graph, 2, relay=(collector.host, collector.port)
        )
        stats = collector.stats()
    ranks = {
        src["rank"] for src in stats["sources"].values()
    }
    assert ranks == {0, 1}
    assert stats["frames"] > 0
