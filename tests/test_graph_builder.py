"""Tests for GraphBuilder: cleaning policy, duplicates, errors."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder


class TestBasics:
    def test_empty_build(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_empty_with_explicit_n(self):
        g = GraphBuilder(num_vertices=7).build()
        assert g.num_vertices == 7
        assert g.num_edges == 0

    def test_single_edge(self):
        b = GraphBuilder()
        b.add_edge(0, 1, 3.0)
        g = b.build()
        assert g.num_vertices == 2
        assert g.edge_weight(0, 1) == 3.0

    def test_grows_to_max_vertex(self):
        b = GraphBuilder()
        b.add_edge(2, 9, 1.0)
        assert b.build().num_vertices == 10

    def test_symmetry(self):
        b = GraphBuilder()
        b.add_edge(3, 1, 2.0)
        g = b.build()
        assert g.edge_weight(1, 3) == 2.0
        assert g.edge_weight(3, 1) == 2.0

    def test_both_orientations_are_one_edge(self):
        b = GraphBuilder()
        b.add_edge(0, 1, 2.0)
        b.add_edge(1, 0, 4.0)
        g = b.build()
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 2.0  # "min" policy

    def test_add_edges_bulk(self):
        b = GraphBuilder()
        b.add_edges([(0, 1, 1.0), (1, 2, 2.0)])
        assert b.num_edges == 2

    def test_add_unweighted_edges(self):
        b = GraphBuilder()
        b.add_unweighted_edges([(0, 1), (1, 2)])
        g = b.build()
        assert g.edge_weight(0, 1) == 1.0

    def test_len_and_counts(self):
        b = GraphBuilder()
        b.add_edge(0, 1, 1.0)
        b.add_edge(1, 2, 1.0)
        assert len(b) == 2
        assert b.num_vertices == 3

    def test_builder_reusable_after_build(self):
        b = GraphBuilder()
        b.add_edge(0, 1, 1.0)
        g1 = b.build()
        b.add_edge(1, 2, 1.0)
        g2 = b.build()
        assert g1.num_edges == 1
        assert g2.num_edges == 2


class TestDuplicatePolicies:
    def test_min_policy(self):
        b = GraphBuilder(on_duplicate="min")
        b.add_edge(0, 1, 5.0)
        b.add_edge(0, 1, 2.0)
        assert b.build().edge_weight(0, 1) == 2.0

    def test_max_policy(self):
        b = GraphBuilder(on_duplicate="max")
        b.add_edge(0, 1, 5.0)
        b.add_edge(0, 1, 2.0)
        assert b.build().edge_weight(0, 1) == 5.0

    def test_first_policy(self):
        b = GraphBuilder(on_duplicate="first")
        b.add_edge(0, 1, 5.0)
        b.add_edge(0, 1, 2.0)
        assert b.build().edge_weight(0, 1) == 5.0

    def test_last_policy(self):
        b = GraphBuilder(on_duplicate="last")
        b.add_edge(0, 1, 5.0)
        b.add_edge(0, 1, 2.0)
        assert b.build().edge_weight(0, 1) == 2.0

    def test_error_policy(self):
        b = GraphBuilder(on_duplicate="error")
        b.add_edge(0, 1, 5.0)
        with pytest.raises(GraphError):
            b.add_edge(1, 0, 2.0)

    def test_unknown_policy(self):
        with pytest.raises(GraphError):
            GraphBuilder(on_duplicate="bogus")


class TestValidation:
    def test_negative_vertex(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edge(-1, 0, 1.0)

    def test_out_of_range_with_explicit_n(self):
        b = GraphBuilder(num_vertices=3)
        with pytest.raises(GraphError):
            b.add_edge(0, 3, 1.0)

    def test_negative_n(self):
        with pytest.raises(GraphError):
            GraphBuilder(num_vertices=-1)

    def test_zero_weight(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edge(0, 1, 0.0)

    def test_negative_weight(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edge(0, 1, -2.0)

    def test_nan_weight(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edge(0, 1, float("nan"))

    def test_inf_weight(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edge(0, 1, float("inf"))

    def test_self_loop_dropped_by_default(self):
        b = GraphBuilder()
        b.add_edge(2, 2, 1.0)
        g = b.build()
        assert g.num_edges == 0
        assert g.num_vertices == 3  # the vertex still counts

    def test_self_loop_error_when_forbidden(self):
        b = GraphBuilder(drop_self_loops=False)
        with pytest.raises(GraphError):
            b.add_edge(2, 2, 1.0)

    def test_build_passes_structural_validation(self):
        from repro.graph.validate import check_graph

        b = GraphBuilder()
        b.add_edges([(5, 2, 1.0), (2, 0, 2.0), (0, 5, 3.0), (1, 4, 1.5)])
        check_graph(b.build())
