"""Tests for graph metrics."""

import pytest

from repro.generators import grid_road_network, watts_strogatz
from repro.graph.metrics import (
    average_clustering,
    distance_statistics,
    estimate_diameter,
)

from .conftest import build_graph


class TestDiameter:
    def test_path_graph_exact(self, path_graph):
        # Double sweep is exact on trees: 1 + 2 + 3 = 6.
        assert estimate_diameter(path_graph, samples=2, seed=0) == 6.0

    def test_star(self, star_graph):
        # Farthest leaf pair: 4 + 5 = 9.
        assert estimate_diameter(star_graph, samples=6, seed=0) == 9.0

    def test_lower_bound(self, random_graph):
        from repro.baselines.apsp import floyd_warshall
        import numpy as np

        table = floyd_warshall(random_graph)
        true_diameter = float(table[np.isfinite(table)].max())
        est = estimate_diameter(random_graph, samples=8, seed=1)
        assert est <= true_diameter + 1e-9
        assert est >= 0.5 * true_diameter  # double sweep is tight

    def test_empty(self):
        assert estimate_diameter(build_graph([], n=0)) == 0.0

    def test_road_larger_than_small_world(self):
        road = grid_road_network(12, 12, seed=0, weight_dist="unit")
        social = watts_strogatz(144, 6, 0.3, seed=0, weight_dist="unit")
        assert estimate_diameter(road, samples=6) > estimate_diameter(
            social, samples=6
        )


class TestClustering:
    def test_triangle_is_one(self):
        g = build_graph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        assert average_clustering(g) == pytest.approx(1.0)

    def test_star_is_zero(self, star_graph):
        assert average_clustering(star_graph) == 0.0

    def test_path_is_zero(self, path_graph):
        assert average_clustering(path_graph) == 0.0

    def test_triangle_plus_pendant(self):
        g = build_graph(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)]
        )
        # Vertices 0,1: coefficient 1; vertex 2: 1/3; vertex 3: 0.
        assert average_clustering(g) == pytest.approx((1 + 1 + 1 / 3 + 0) / 4)

    def test_max_degree_filter(self, star_graph):
        # Excluding the hub leaves only degree-1 leaves: 0.
        assert average_clustering(star_graph, max_degree=2) == 0.0

    def test_empty(self):
        assert average_clustering(build_graph([], n=0)) == 0.0


class TestDistanceStats:
    def test_path_graph(self, path_graph):
        stats = distance_statistics(path_graph, samples=4, seed=0)
        assert stats["max"] == 6.0
        assert stats["mean_hops"] >= 1.0

    def test_hops_at_most_distance_for_int_weights(self, random_graph):
        stats = distance_statistics(random_graph, samples=4, seed=0)
        # Integer weights >= 1 imply hops <= distance.
        assert stats["mean_hops"] <= stats["mean"]

    def test_empty(self):
        stats = distance_statistics(build_graph([], n=0))
        assert stats["mean"] == 0.0

    def test_disconnected_ignores_inf(self, two_components):
        stats = distance_statistics(two_components, samples=5, seed=0)
        assert stats["max"] <= 2.0
