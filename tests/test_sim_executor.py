"""Tests for the discrete-event intra-node simulator."""

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.serial import build_serial
from repro.errors import SimulationError
from repro.sim.executor import IntraNodeSimulator, simulate_intra_node


class TestSerialEquivalence:
    def test_one_worker_matches_serial_store(self, random_graph):
        """p=1 completion-visibility is exactly the serial algorithm."""
        index, _run = simulate_intra_node(random_graph, 1)
        serial_store, _ = build_serial(random_graph)
        assert index.store == serial_store

    def test_one_worker_immediate_matches_too(self, random_graph):
        index, _run = simulate_intra_node(
            random_graph, 1, visibility="immediate"
        )
        serial_store, _ = build_serial(random_graph)
        assert index.store == serial_store


class TestCorrectness:
    @pytest.mark.parametrize("policy", ["static", "dynamic"])
    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_exact_queries_any_schedule(self, random_graph, policy, p):
        index, _run = simulate_intra_node(
            random_graph, p, policy=policy, jitter=0.3, worker_jitter=0.3,
            seed=p,
        )
        for s in (0, 17):
            truth = dijkstra_sssp(random_graph, s)
            for t in range(random_graph.num_vertices):
                assert index.distance(s, t) == truth[t]

    def test_immediate_visibility_exact(self, random_graph):
        index, _run = simulate_intra_node(
            random_graph, 6, visibility="immediate"
        )
        truth = dijkstra_sssp(random_graph, 4)
        for t in range(random_graph.num_vertices):
            assert index.distance(4, t) == truth[t]


class TestDeterminism:
    def test_same_seed_same_result(self, random_graph):
        a_idx, a_run = simulate_intra_node(
            random_graph, 4, jitter=0.2, worker_jitter=0.2, seed=5
        )
        b_idx, b_run = simulate_intra_node(
            random_graph, 4, jitter=0.2, worker_jitter=0.2, seed=5
        )
        assert a_run.makespan == b_run.makespan
        assert a_idx.store == b_idx.store

    def test_different_seed_differs(self, medium_graph):
        a = simulate_intra_node(medium_graph, 4, jitter=0.3, seed=1)[1]
        b = simulate_intra_node(medium_graph, 4, jitter=0.3, seed=2)[1]
        assert a.makespan != b.makespan

    def test_no_jitter_is_seed_independent(self, random_graph):
        a = simulate_intra_node(random_graph, 3, seed=1)[1]
        b = simulate_intra_node(random_graph, 3, seed=2)[1]
        assert a.makespan == b.makespan


class TestSpeedupShape:
    def test_more_workers_is_faster(self, medium_graph):
        times = [
            simulate_intra_node(medium_graph, p)[1].makespan
            for p in (1, 4, 12)
        ]
        assert times[0] > times[1] > times[2]

    def test_speedup_is_sublinear(self, medium_graph):
        t1 = simulate_intra_node(medium_graph, 1)[1].makespan
        t8 = simulate_intra_node(medium_graph, 8)[1].makespan
        assert t1 / t8 <= 8.0

    def test_labels_grow_with_workers(self, medium_graph):
        ln = [
            simulate_intra_node(medium_graph, p)[0].avg_label_size()
            for p in (1, 8)
        ]
        assert ln[1] >= ln[0]

    def test_immediate_prunes_at_least_as_well(self, medium_graph):
        """Immediate visibility is the pruning upper bound."""
        comp = simulate_intra_node(medium_graph, 8, visibility="completion")
        imm = simulate_intra_node(medium_graph, 8, visibility="immediate")
        assert (
            imm[0].store.total_entries <= comp[0].store.total_entries
        )

    def test_worker_jitter_slows_makespan(self, medium_graph):
        clean = simulate_intra_node(medium_graph, 6)[1].makespan
        noisy = simulate_intra_node(
            medium_graph, 6, worker_jitter=0.5, seed=3
        )[1].makespan
        assert noisy > clean


class TestAccounting:
    def test_busy_time_bounded_by_makespan(self, random_graph):
        _idx, run = simulate_intra_node(random_graph, 4, jitter=0.2, seed=1)
        assert len(run.per_worker_busy) == 4
        for busy in run.per_worker_busy:
            assert busy <= run.makespan + 1e-9

    def test_schedule_recording(self, random_graph):
        _idx, run = simulate_intra_node(
            random_graph, 3, record_schedule=True
        )
        assert len(run.schedule) == random_graph.num_vertices
        for worker, root, start, finish in run.schedule:
            assert 0 <= worker < 3
            assert finish > start >= 0

    def test_every_root_executed_once(self, random_graph):
        _idx, run = simulate_intra_node(
            random_graph, 5, record_schedule=True
        )
        roots = [r for _w, r, _s, _f in run.schedule]
        assert sorted(roots) == list(range(random_graph.num_vertices))

    def test_per_root_stats_collected(self, random_graph):
        idx, _run = simulate_intra_node(random_graph, 4)
        assert len(idx.stats.per_root) == random_graph.num_vertices

    def test_load_imbalance_metric(self, medium_graph):
        _idx, run = simulate_intra_node(
            medium_graph, 6, worker_jitter=0.4, policy="static", seed=2
        )
        assert run.load_imbalance >= 1.0


class TestValidation:
    def test_zero_workers(self, random_graph):
        with pytest.raises(SimulationError):
            IntraNodeSimulator(random_graph, 0)

    def test_bad_visibility(self, random_graph):
        with pytest.raises(SimulationError):
            IntraNodeSimulator(random_graph, 1, visibility="psychic")

    def test_negative_jitter(self, random_graph):
        with pytest.raises(SimulationError):
            IntraNodeSimulator(random_graph, 1, jitter=-0.1)

    def test_advance_all_backwards(self, random_graph):
        sim = IntraNodeSimulator(random_graph, 2)
        sim.run_roots(list(sim.engine.order))
        with pytest.raises(SimulationError):
            sim.advance_all(sim.clock - 1.0)

    def test_empty_batch_is_noop(self, random_graph):
        sim = IntraNodeSimulator(random_graph, 2)
        sim.run_roots([])
        assert sim.clock == 0.0


class TestRounds:
    def test_incremental_batches_cover_all(self, random_graph):
        """Running the order in two batches still indexes everything."""
        sim = IntraNodeSimulator(random_graph, 3)
        order = list(sim.engine.order)
        sim.run_roots(order[:20])
        mid_clock = sim.clock
        sim.run_roots(order[20:])
        assert sim.clock >= mid_clock
        sim.store.finalize()
        truth = dijkstra_sssp(random_graph, 1)
        from repro.core.query import query_distance

        for t in range(random_graph.num_vertices):
            assert query_distance(sim.store, 1, t) == truth[t]

    def test_drain_deltas(self, random_graph):
        sim = IntraNodeSimulator(random_graph, 2)
        order = list(sim.engine.order)
        sim.run_roots(order[:10])
        first = sim.drain_deltas()
        assert len(first) > 0
        assert sim.drain_deltas() == []
        sim.run_roots(order[10:20])
        assert len(sim.drain_deltas()) > 0

    def test_receive_labels_dedupes(self, random_graph):
        sim = IntraNodeSimulator(random_graph, 2)
        sim.receive_labels([(0, 5, 1.5), (0, 5, 1.5), (1, 5, 2.0)])
        assert sim.store.label_size(0) == 1
        assert sim.store.label_size(1) == 1
