"""Tests for the lock-order deadlock analysis (runtime + static)."""

import textwrap

import pytest

from repro.check import hooks
from repro.check.corpus import run_deadlock_corpus
from repro.check.deadlock import (
    RULE_CYCLE,
    RULE_ORDER,
    LockOrderRecorder,
    analyze,
    collect_static_edges,
)
from repro.check.vectorclock import VectorClockSanitizer


@pytest.fixture(autouse=True)
def _isolate_sanitizer():
    previous = hooks.get_active()
    hooks.set_active(None)
    yield
    hooks.set_active(previous)


class TestRecorder:
    def test_nested_acquire_records_edge(self):
        rec = LockOrderRecorder()
        rec.note_acquire((), "a")
        rec.note_acquire(("a",), "b")
        (edge,) = rec.edges
        assert (edge.src, edge.dst) == ("a", "b")
        assert edge.count == 1
        assert rec.acquisitions == 2

    def test_cycle_detection(self):
        rec = LockOrderRecorder()
        rec.note_acquire(("a",), "b")
        rec.note_acquire(("b",), "a")
        (cycle,) = rec.cycles()
        assert sorted(cycle) == ["a", "b"]

    def test_self_loop_is_a_cycle(self):
        rec = LockOrderRecorder()
        rec.note_acquire(("a",), "a")
        assert rec.cycles() == [["a"]]

    def test_consistent_order_has_no_cycle(self):
        rec = LockOrderRecorder()
        for _ in range(3):
            rec.note_acquire(("a",), "b")
            rec.note_acquire(("a", "b"), "c")
        assert rec.cycles() == []

    def test_three_lock_cycle(self):
        rec = LockOrderRecorder()
        rec.note_acquire(("a",), "b")
        rec.note_acquire(("b",), "c")
        rec.note_acquire(("c",), "a")
        (cycle,) = rec.cycles()
        assert sorted(cycle) == ["a", "b", "c"]


class TestSanitizerFeed:
    """Both engines feed the recorder through their tracked locks."""

    def test_vc_locks_feed_the_recorder(self):
        rec = LockOrderRecorder()
        with VectorClockSanitizer(lock_order=rec) as vc:
            a = vc.make_lock("alpha")
            b = vc.make_lock("beta")
            with a:
                with b:
                    pass
        (edge,) = rec.edges
        assert (edge.src, edge.dst) == ("alpha", "beta")

    def test_lockset_locks_feed_the_recorder(self):
        from repro.check.sanitizer import LocksetSanitizer

        rec = LockOrderRecorder()
        with LocksetSanitizer(lock_order=rec) as san:
            a = san.make_lock("alpha")
            b = san.make_lock("beta")
            with a:
                with b:
                    pass
        (edge,) = rec.edges
        assert (edge.src, edge.dst) == ("alpha", "beta")

    def test_per_instance_names_do_not_merge(self):
        """Two same-named lock pairs must not fabricate a cycle."""
        rec = LockOrderRecorder()
        with VectorClockSanitizer(lock_order=rec) as vc:
            a1 = vc.make_lock("pair.a")
            b1 = vc.make_lock("pair.b")
            a2 = vc.make_lock("pair.a")
            b2 = vc.make_lock("pair.b")
            with a1:
                with b1:
                    pass
            with b2:
                with a2:
                    pass
        assert rec.cycles() == []  # pair.a->pair.b, pair.b#2->pair.a#2


class TestStaticPass:
    def _edges(self, tmp_path, source):
        path = tmp_path / "snippet.py"
        path.write_text(textwrap.dedent(source))
        return collect_static_edges([str(path)])

    def test_nested_with_produces_edge(self, tmp_path):
        edges = self._edges(
            tmp_path,
            """
            def f(a_lock, b_lock):
                with a_lock:
                    with b_lock:
                        pass
            """,
        )
        (edge,) = edges
        assert (edge.outer, edge.inner) == ("a_lock", "b_lock")

    def test_multi_item_with_is_ordered(self, tmp_path):
        edges = self._edges(
            tmp_path,
            """
            def f(a_lock, b_lock):
                with a_lock, b_lock:
                    pass
            """,
        )
        (edge,) = edges
        assert (edge.outer, edge.inner) == ("a_lock", "b_lock")

    def test_def_inside_with_resets_held(self, tmp_path):
        edges = self._edges(
            tmp_path,
            """
            def f(a_lock, b_lock):
                with a_lock:
                    def g():
                        with b_lock:
                            pass
            """,
        )
        assert edges == []

    def test_non_lockish_with_ignored(self, tmp_path):
        edges = self._edges(
            tmp_path,
            """
            def f(path, a_lock):
                with open(path) as fh:
                    with a_lock:
                        pass
            """,
        )
        assert edges == []


class TestAnalyze:
    def test_runtime_cycle_becomes_finding(self):
        rec = LockOrderRecorder()
        rec.note_acquire(("a",), "b")
        rec.note_acquire(("b",), "a")
        findings = analyze((), rec)
        assert [f["rule"] for f in findings] == [RULE_CYCLE]
        assert "a <-> b" in findings[0]["message"]

    def test_static_inversion_becomes_finding(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            textwrap.dedent(
                """
                def f(a_lock, b_lock):
                    with a_lock:
                        with b_lock:
                            pass

                def g(a_lock, b_lock):
                    with b_lock:
                        with a_lock:
                            pass
                """
            )
        )
        findings = analyze([str(path)])
        assert [f["rule"] for f in findings] == [RULE_ORDER]
        assert "inverts the order" in findings[0]["message"]

    def test_static_vs_runtime_inversion(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            textwrap.dedent(
                """
                def f(a_lock, b_lock):
                    with b_lock:
                        with a_lock:
                            pass
                """
            )
        )
        rec = LockOrderRecorder()
        rec.note_acquire(("builder.a_lock",), "builder.b_lock")
        findings = analyze([str(path)], rec)
        assert [f["rule"] for f in findings] == [RULE_ORDER]
        assert "runtime acquisition order" in findings[0]["message"]

    def test_clean_tree_and_recorder(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            textwrap.dedent(
                """
                def f(a_lock, b_lock):
                    with a_lock:
                        with b_lock:
                            pass
                """
            )
        )
        rec = LockOrderRecorder()
        rec.note_acquire(("builder.a_lock",), "builder.b_lock")
        assert analyze([str(path)], rec) == []


class TestRealTree:
    def test_src_has_no_deadlock_findings(self):
        rec = LockOrderRecorder()
        with VectorClockSanitizer(lock_order=rec):
            from repro.generators.random_graphs import gnm_random_graph
            from repro.parallel.threads import build_parallel_threads

            graph = gnm_random_graph(40, 100, seed=7)
            build_parallel_threads(graph, 3, policy="dynamic")
        findings = analyze(["src"], rec)
        assert findings == [], findings


class TestCorpus:
    def test_deadlock_corpus_detects_all_seeded_defects(self):
        cases = run_deadlock_corpus("tests/corpus/deadlocks")
        assert len(cases) >= 3
        failed = [c for c in cases if not c.ok]
        assert not failed, "\n".join(
            f"{c.path}: expected {c.expect}, got {c.got}\n{c.detail}"
            for c in failed
        )
        assert any(c.expect == 0 for c in cases)
        assert any(c.expect > 0 for c in cases)
