"""Tests for the edge-list, DIMACS, and npz readers/writers."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.io.dimacs import read_dimacs, write_dimacs
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.npz import load_graph_npz, save_graph_npz

from .conftest import build_graph


class TestEdgelistRead:
    def test_weighted(self):
        g, ids = read_edgelist(io.StringIO("0 1 2.5\n1 2 1.0\n"))
        assert g.num_edges == 2
        assert g.edge_weight(ids[0], ids[1]) == 2.5

    def test_unweighted_default(self):
        g, _ = read_edgelist(io.StringIO("0 1\n"), default_weight=3.0)
        assert g.edge_weight(0, 1) == 3.0

    def test_comments_and_blanks(self):
        text = "# comment\n% other\n\n0 1 1\n"
        g, _ = read_edgelist(io.StringIO(text))
        assert g.num_edges == 1

    def test_sparse_ids_densified(self):
        g, ids = read_edgelist(io.StringIO("100 200 1\n200 5000 2\n"))
        assert g.num_vertices == 3
        assert ids == {100: 0, 200: 1, 5000: 2}

    def test_self_loops_dropped(self):
        g, _ = read_edgelist(io.StringIO("1 1 4\n1 2 1\n"))
        assert g.num_edges == 1

    def test_duplicate_keeps_min(self):
        g, ids = read_edgelist(io.StringIO("0 1 5\n1 0 2\n"))
        assert g.edge_weight(ids[0], ids[1]) == 2.0

    def test_wrong_columns(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            read_edgelist(io.StringIO("0 1 2 3\n"))

    def test_non_numeric(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("a b\n"))

    def test_negative_id(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("-1 2\n"))

    def test_bad_weight(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("0 1 -5\n"))

    def test_roundtrip_via_file(self, tmp_path, random_graph):
        path = tmp_path / "g.txt"
        write_edgelist(random_graph, path)
        back, ids = read_edgelist(path)
        assert back.num_edges == random_graph.num_edges
        # ids maps original vertex -> dense id in first-appearance order;
        # the mapped edges must match weights exactly.
        for u, v, w in random_graph.edges():
            assert back.edge_weight(ids[u], ids[v]) == w


class TestDimacs:
    GOOD = "c comment\np sp 3 4\na 1 2 5\na 2 1 5\na 2 3 1\na 3 2 1\n"

    def test_read(self):
        g = read_dimacs(io.StringIO(self.GOOD))
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.edge_weight(0, 1) == 5.0

    def test_missing_problem_line(self):
        with pytest.raises(GraphFormatError, match="problem line"):
            read_dimacs(io.StringIO("c nothing\n"))

    def test_arc_before_problem(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("a 1 2 3\np sp 2 2\n"))

    def test_duplicate_problem_line(self):
        with pytest.raises(GraphFormatError, match="duplicate"):
            read_dimacs(io.StringIO("p sp 2 2\np sp 2 2\n"))

    def test_bad_problem_format(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("p xx 2 2\n"))

    def test_unknown_record(self):
        with pytest.raises(GraphFormatError, match="unknown record"):
            read_dimacs(io.StringIO("p sp 1 0\nz 1 2\n"))

    def test_bad_arc_arity(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("p sp 2 1\na 1 2\n"))

    def test_too_many_arcs(self):
        text = "p sp 2 1\na 1 2 1\na 2 1 1\n"
        with pytest.raises(GraphFormatError, match="declares"):
            read_dimacs(io.StringIO(text))

    def test_asymmetric_weights_take_min(self):
        text = "p sp 2 2\na 1 2 5\na 2 1 3\n"
        g = read_dimacs(io.StringIO(text))
        assert g.edge_weight(0, 1) == 3.0

    def test_roundtrip(self, tmp_path, random_graph):
        path = tmp_path / "g.gr"
        write_dimacs(random_graph, path)
        back = read_dimacs(path)
        assert back.num_edges == random_graph.num_edges
        for u, v, w in random_graph.edges():
            assert back.edge_weight(u, v) == w


class TestNpz:
    def test_roundtrip(self, tmp_path, random_graph):
        path = tmp_path / "g.npz"
        save_graph_npz(random_graph, path)
        back = load_graph_npz(path)
        assert back == random_graph
        assert back.name == random_graph.name

    def test_empty_graph(self, tmp_path):
        g = build_graph([], n=4, name="empty")
        path = tmp_path / "e.npz"
        save_graph_npz(g, path)
        back = load_graph_npz(path)
        assert back.num_vertices == 4
        assert back.num_edges == 0

    def test_not_a_graph_file(self, tmp_path):
        import numpy as np

        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_graph_npz(path)
