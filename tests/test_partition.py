"""Tests for inter-node partitioning and sync-chunk schedules."""

import pytest

from repro.cluster.partition import round_robin_partition, split_chunks
from repro.errors import TaskError


class TestRoundRobin:
    def test_deal(self):
        parts = round_robin_partition([9, 8, 7, 6, 5], 2)
        assert parts == [[9, 7, 5], [8, 6]]

    def test_single_node(self):
        assert round_robin_partition([1, 2, 3], 1) == [[1, 2, 3]]

    def test_more_nodes_than_tasks(self):
        parts = round_robin_partition([1, 2], 4)
        assert parts == [[1], [2], [], []]

    def test_covers_everything_once(self):
        parts = round_robin_partition(range(100), 7)
        flat = sorted(x for p in parts for x in p)
        assert flat == list(range(100))

    def test_invalid_nodes(self):
        with pytest.raises(TaskError):
            round_robin_partition([1], 0)


class TestUniformChunks:
    def test_even_split(self):
        chunks = split_chunks(list(range(6)), 3)
        assert chunks == [[0, 1], [2, 3], [4, 5]]

    def test_remainder_goes_early(self):
        chunks = split_chunks(list(range(7)), 3)
        assert [len(c) for c in chunks] == [3, 2, 2]

    def test_single_chunk(self):
        assert split_chunks([1, 2, 3], 1) == [[1, 2, 3]]

    def test_more_chunks_than_tasks(self):
        chunks = split_chunks([1, 2], 5)
        assert sum(len(c) for c in chunks) == 2
        assert len(chunks) == 5  # empty syncs still happen

    def test_preserves_order(self):
        chunks = split_chunks([5, 3, 1], 2)
        assert [x for c in chunks for x in c] == [5, 3, 1]

    def test_invalid_count(self):
        with pytest.raises(TaskError):
            split_chunks([1], 0)


class TestEarlyChunks:
    def test_geometric_growth(self):
        chunks = split_chunks(list(range(150)), 4, schedule="early")
        sizes = [len(c) for c in chunks]
        assert sum(sizes) == 150
        # Sizes grow (roughly doubling) toward the end.
        assert sizes[0] < sizes[-1]
        assert sizes == sorted(sizes)

    def test_first_chunk_small(self):
        chunks = split_chunks(list(range(100)), 4, schedule="early")
        # 2^1-1 / 15 of 100 ~ 7.
        assert len(chunks[0]) <= 10

    def test_min_chunk_enforced(self):
        chunks = split_chunks(list(range(100)), 6, schedule="early", min_chunk=6)
        for c in chunks[:-1]:
            assert len(c) >= 6

    def test_min_chunk_with_tiny_input(self):
        chunks = split_chunks([1, 2, 3], 4, schedule="early", min_chunk=8)
        assert sum(len(c) for c in chunks) == 3

    def test_covers_everything(self):
        chunks = split_chunks(list(range(77)), 5, schedule="early")
        assert [x for c in chunks for x in c] == list(range(77))

    def test_invalid_min_chunk(self):
        with pytest.raises(TaskError):
            split_chunks([1], 1, min_chunk=0)

    def test_unknown_schedule(self):
        with pytest.raises(TaskError):
            split_chunks([1], 1, schedule="late")
