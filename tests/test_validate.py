"""Tests for the index validators."""

import pytest

from repro.core.index import PLLIndex
from repro.core.serial import build_serial
from repro.errors import IndexError_
from repro.graph.order import by_degree
from repro.sim.executor import simulate_intra_node
from repro.validate import (
    check_canonical,
    check_cover,
    check_label_soundness,
    validate_index,
)


class TestSoundness:
    def test_serial_build_is_sound(self, random_graph):
        order = by_degree(random_graph)
        store, _ = build_serial(random_graph, order=order)
        report = check_label_soundness(random_graph, store, order)
        assert report.entries_checked == store.total_entries

    def test_parallel_build_is_sound(self, random_graph):
        index, _ = simulate_intra_node(random_graph, 4, jitter=0.3, seed=1)
        report = check_label_soundness(
            random_graph, index.store, index.order
        )
        assert report.entries_checked == index.store.total_entries

    def test_detects_corrupted_distance(self, random_graph):
        order = by_degree(random_graph)
        store, _ = build_serial(random_graph, order=order)
        # Corrupt one non-self entry.
        for v in range(store.n):
            if store.label_size(v) > 1:
                store.dists_of(v)[-1] += 1.0
                break
        with pytest.raises(IndexError_, match="stores"):
            check_label_soundness(random_graph, store, order)


class TestCover:
    def test_serial_covers(self, random_graph):
        store, _ = build_serial(random_graph)
        report = check_cover(random_graph, store, sources=range(10))
        assert report.pairs_checked == 10 * random_graph.num_vertices

    def test_detects_missing_entry(self, random_graph):
        store, _ = build_serial(random_graph)
        # Drop every entry of one vertex with a non-trivial label.
        victim = max(range(store.n), key=store.label_size)
        store._hubs[victim].clear()
        store._dists[victim].clear()
        store._finalized_hubs = None
        store._finalized_dists = None
        with pytest.raises(IndexError_, match="QUERY"):
            check_cover(random_graph, store, sources=[victim])


class TestCanonical:
    def test_serial_build_is_canonical(self, random_graph):
        order = by_degree(random_graph)
        store, _ = build_serial(random_graph, order=order)
        report = check_canonical(random_graph, store, order)
        assert report.redundant_entries == 0

    def test_parallel_build_counts_redundancy(self, medium_graph):
        index, _ = simulate_intra_node(medium_graph, 8, jitter=0.3, seed=3)
        report = check_canonical(
            medium_graph, index.store, index.order, strict=False
        )
        serial_store, _ = build_serial(medium_graph)
        expected_extra = (
            index.store.total_entries - serial_store.total_entries
        )
        assert report.redundant_entries >= 0
        # Redundancy counted must account for at least the extra entries.
        assert report.redundant_entries >= expected_extra

    def test_strict_raises_on_parallel_redundancy(self, medium_graph):
        index, _ = simulate_intra_node(medium_graph, 8, jitter=0.3, seed=3)
        serial_store, _ = build_serial(medium_graph)
        if index.store.total_entries == serial_store.total_entries:
            pytest.skip("this schedule happened to add no redundancy")
        with pytest.raises(IndexError_, match="redundant"):
            check_canonical(medium_graph, index.store, index.order)


class TestValidateIndex:
    def test_full_validation(self, random_graph):
        index = PLLIndex.build(random_graph)
        report = validate_index(index, sources=range(5))
        assert report.pairs_checked == 5 * random_graph.num_vertices
        assert report.entries_checked > 0

    def test_requires_graph(self, random_graph, tmp_path):
        index = PLLIndex.build(random_graph)
        f = tmp_path / "i.npz"
        index.save(f)
        loaded = PLLIndex.load(f)
        with pytest.raises(IndexError_):
            validate_index(loaded)
