"""Tests for speedup tables and time breakdowns."""

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import speedup_table, time_breakdown
from repro.types import IndexStats, ParallelRunResult


def run(makespan, ln=10.0, comm=0.0):
    return ParallelRunResult(
        index_stats=IndexStats(
            n=10, total_entries=int(ln * 10), avg_label_size=ln,
            max_label_size=int(ln * 2), build_seconds=makespan,
        ),
        makespan=makespan,
        computation_time=makespan * 0.9,
        communication_time=comm,
    )


class TestSpeedupTable:
    def test_basic(self):
        row = speedup_table("g", [1, 2, 4], [run(8.0), run(4.0), run(2.0)])
        assert row.speedups == [1.0, 2.0, 4.0]
        assert row.baseline_seconds == 8.0
        assert row.label_sizes == [10.0, 10.0, 10.0]

    def test_mismatched_lengths(self):
        with pytest.raises(SimulationError):
            speedup_table("g", [1, 2], [run(1.0)])

    def test_empty(self):
        with pytest.raises(SimulationError):
            speedup_table("g", [], [])

    def test_zero_baseline(self):
        with pytest.raises(SimulationError):
            speedup_table("g", [1], [run(0.0)])


class TestBreakdown:
    def test_fractions(self):
        b = time_breakdown(run(10.0, comm=2.5))
        assert b["makespan"] == 10.0
        assert b["communication"] == 2.5
        assert b["communication_fraction"] == 0.25

    def test_zero_makespan(self):
        b = time_breakdown(run(0.0))
        assert b["communication_fraction"] == 0.0


class TestLoadImbalance:
    def test_even(self):
        r = run(4.0)
        r.per_worker_busy = [1.0, 1.0, 1.0]
        assert r.load_imbalance == 1.0

    def test_skewed(self):
        r = run(4.0)
        r.per_worker_busy = [3.0, 1.0]
        assert r.load_imbalance == 1.5

    def test_empty(self):
        assert run(4.0).load_imbalance == 1.0

    def test_zero_work(self):
        r = run(4.0)
        r.per_worker_busy = [0.0, 0.0]
        assert r.load_imbalance == 1.0
