"""Tests for the thread-role dataflow lints (PC007–PC012)."""

import textwrap

import pytest

from repro.check.corpus import run_dataflow_corpus
from repro.check.dataflow import CallGraph, analyze_paths
from repro.check.lint import FileContext


def _analyze(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return analyze_paths([str(path)])


def _rules(report):
    return sorted({v.rule for v in report.violations})


class TestRoleInference:
    def _graph(self, source):
        graph = CallGraph()
        graph.add_file(FileContext("snippet.py", textwrap.dedent(source)))
        graph.infer_roles()
        return {fn.simple: fn.roles for fn in graph.functions}

    def test_worker_seeds_by_name_and_thread_target(self):
        roles = self._graph(
            """
            import threading

            def worker(store):
                pass

            def crunch(store):
                pass

            def launch(store):
                threading.Thread(target=crunch).start()
            """
        )
        assert "worker" in roles["worker"]
        assert "worker" in roles["crunch"]
        assert "worker" not in roles["launch"]

    def test_roles_propagate_to_callees(self):
        roles = self._graph(
            """
            def commit_shared(store):
                pass

            def worker(store):
                commit_shared(store)
            """
        )
        assert "worker" in roles["commit_shared"]

    def test_sim_and_serve_seeds(self):
        roles = self._graph(
            """
            def simulate_round(nodes):
                shared_step(nodes)

            def handle_query(req):
                shared_step(req)

            def shared_step(x):
                pass
            """
        )
        assert "sim" in roles["simulate_round"]
        assert "serve" in roles["handle_query"]
        assert {"sim", "serve"} <= roles["shared_step"]

    def test_rank_seeds(self):
        roles = self._graph(
            """
            def cluster_rank_program(ctx):
                pass

            def rank_worker_body(ctx):
                pass
            """
        )
        assert "rank" in roles["cluster_rank_program"]
        assert "rank" in roles["rank_worker_body"]


class TestPC007:
    def test_unlocked_worker_commit_flagged(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def worker(store, triples):
                store.add_delta(triples)
            """,
        )
        assert _rules(report) == ["PC007"]

    def test_locked_commit_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def worker(store, commit_lock, triples):
                with commit_lock:
                    store.add_delta(triples)
            """,
        )
        assert report.ok, report.violations

    def test_rank_private_store_exempt(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def rank_setup(n, triples):
                store = LabelStore(n)
                store.add_delta(triples)
            """,
        )
        assert report.ok, report.violations

    def test_interprocedural_commit_flagged(self, tmp_path):
        """The callee commits; only the caller is worker-seeded."""
        report = _analyze(
            tmp_path,
            """
            def commit_all(store, triples):
                store.merge_from(triples)

            def worker(store, triples):
                commit_all(store, triples)
            """,
        )
        assert _rules(report) == ["PC007"]

    def test_non_worker_commit_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def serial_build(store, triples):
                store.add_delta(triples)
            """,
        )
        assert report.ok, report.violations


class TestPC008:
    def test_subscript_write_flagged(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def patch(store):
                dists = store.finalized_dists()
                dists[0] = 0.0
            """,
        )
        assert _rules(report) == ["PC008"]

    def test_tuple_unpack_tracked(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def patch(store):
                indptr, hubs, dists = store.finalized_arrays()
                hubs[3] += 1
            """,
        )
        assert _rules(report) == ["PC008"]

    def test_mutating_method_flagged(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def patch(store):
                store.finalized_hubs().sort()
            """,
        )
        assert _rules(report) == ["PC008"]

    def test_copy_then_write_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def patch(store):
                dists = store.finalized_dists().copy()
                dists[0] = 0.0
            """,
        )
        assert report.ok, report.violations


class TestPC009:
    def test_untimed_queue_get_flagged(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def handle_query(reply_queue):
                return reply_queue.get()
            """,
        )
        assert _rules(report) == ["PC009"]

    def test_timed_get_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def handle_query(reply_queue):
                return reply_queue.get(timeout=0.5)
            """,
        )
        assert report.ok, report.violations

    def test_create_connection_without_timeout_flagged(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import socket

            def handle_fetch(host, port):
                return socket.create_connection((host, port))
            """,
        )
        assert _rules(report) == ["PC009"]

    def test_untimed_wait_flagged(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def handle_flush(done_event):
                done_event.wait()
            """,
        )
        assert _rules(report) == ["PC009"]

    def test_non_serve_code_unaffected(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def drain(reply_queue):
                return reply_queue.get()
            """,
        )
        assert report.ok, report.violations


class TestPC010:
    def test_set_iteration_flagged(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def simulate_frontier(neighbors):
                frontier = set(neighbors)
                for v in frontier:
                    pass
            """,
        )
        assert _rules(report) == ["PC010"]

    def test_comprehension_over_set_flagged(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def simulate_frontier(neighbors):
                return [v for v in {1, 2, 3}]
            """,
        )
        assert _rules(report) == ["PC010"]

    def test_sorted_set_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def simulate_frontier(neighbors):
                frontier = set(neighbors)
                for v in sorted(frontier):
                    pass
            """,
        )
        assert report.ok, report.violations

    def test_non_sim_set_iteration_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def summarize(neighbors):
                for v in set(neighbors):
                    pass
            """,
        )
        assert report.ok, report.violations


class TestPC011:
    def test_direct_lock_flagged(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            _LOCK = threading.Lock()
            """,
        )
        assert _rules(report) == ["PC011"]

    def test_make_lock_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            from repro.check import hooks

            _LOCK = hooks.make_lock("snippet.lock")
            """,
        )
        assert report.ok, report.violations


class TestPC012:
    def test_shim_import_flagged(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            from repro.analysis import audit_index
            """,
        )
        assert _rules(report) == ["PC012"]


class TestSuppression:
    def test_inline_pragma(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            def worker(store, triples):
                store.add_delta(triples)  # lint-ok: PC007 startup only
            """,
        )
        assert report.ok
        assert len(report.suppressed) == 1

    def test_suppression_file_entries(self, tmp_path):
        from repro.check.lint import Suppression

        path = tmp_path / "snippet.py"
        path.write_text(
            textwrap.dedent(
                """
                def worker(store, triples):
                    store.add_delta(triples)
                """
            )
        )
        report = analyze_paths(
            [str(path)],
            suppressions=[
                Suppression(
                    rule="PC007", path=str(path), reason="accepted"
                )
            ],
        )
        assert report.ok
        assert len(report.suppressed) == 1


class TestRealTree:
    def test_src_is_clean_without_suppressions(self):
        report = analyze_paths(["src"])
        assert report.violations == [], [
            f"{v.path}:{v.line}: {v.rule} {v.message}"
            for v in report.violations
        ]
        assert report.functions > 500
        for role in ("worker", "rank", "sim", "serve"):
            assert report.roles[role] > 0


class TestCorpus:
    def test_dataflow_corpus_expectations_hold(self):
        cases = run_dataflow_corpus("tests/corpus/dataflow")
        assert len(cases) >= 7
        failed = [c for c in cases if not c.ok]
        assert not failed, "\n".join(
            f"{c.path}: expected {c.expect}, got {c.got}\n{c.detail}"
            for c in failed
        )
        flagged = {r for c in cases for r in c.expect}
        assert flagged == {
            "PC007", "PC008", "PC009", "PC010", "PC011", "PC012",
        }
        assert any(c.expect == [] for c in cases)
