"""Tests for the unweighted pruned-BFS PLL engine."""

import math

import pytest

from repro.baselines.bfs import bfs_distances
from repro.core.labels import LabelStore
from repro.core.pruned_bfs import PrunedBFS, build_serial_bfs
from repro.core.query import query_distance
from repro.core.serial import build_serial
from repro.errors import GraphError
from repro.graph.order import by_degree


class TestCorrectness:
    def test_queries_match_bfs(self, random_graph):
        store, _ = build_serial_bfs(random_graph)
        for s in (0, 13):
            truth = bfs_distances(random_graph, s)
            for t in range(random_graph.num_vertices):
                assert query_distance(store, s, t) == truth[t]

    def test_ignores_weights(self, path_graph):
        # path_graph has weights 1, 2, 3 but BFS counts hops.
        store, _ = build_serial_bfs(path_graph)
        assert query_distance(store, 0, 3) == 3.0

    def test_disconnected(self, two_components):
        store, _ = build_serial_bfs(two_components)
        assert query_distance(store, 0, 2) == math.inf

    def test_identical_labels_to_dijkstra_on_unit_weights(
        self, medium_graph
    ):
        """On unit weights the weighted and unweighted engines agree
        label-for-label, not just answer-for-answer."""
        unit = medium_graph.unit_weighted()
        bfs_store, _ = build_serial_bfs(unit)
        dij_store, _ = build_serial(unit)
        assert bfs_store == dij_store

    def test_stats_and_cdf(self, random_graph):
        store, stats = build_serial_bfs(random_graph, collect_per_root=True)
        assert len(stats.per_root) == random_graph.num_vertices
        assert (
            sum(s.labels_added for s in stats.per_root)
            == store.total_entries
        )


class TestEngineInterface:
    def test_run_commit_cycle(self, random_graph):
        engine = PrunedBFS(random_graph, by_degree(random_graph))
        store = LabelStore(random_graph.num_vertices)
        root = int(engine.order[0])
        delta = engine.run(root, store)
        truth = bfs_distances(random_graph, root)
        assert dict(delta) == {
            v: d for v, d in enumerate(truth) if d != math.inf
        }
        engine.commit(root, delta, store)
        assert store.total_entries == len(delta)

    def test_pruning_happens(self, medium_graph):
        engine = PrunedBFS(medium_graph, by_degree(medium_graph))
        store = LabelStore(medium_graph.num_vertices)
        counts = []
        for root in engine.order:
            delta = engine.run(int(root), store)
            engine.commit(int(root), delta, store)
            counts.append(len(delta))
        assert counts[-1] < counts[0]

    def test_invalid_root(self, path_graph):
        engine = PrunedBFS(path_graph, by_degree(path_graph))
        with pytest.raises(GraphError):
            engine.run(99, LabelStore(4))

    def test_rank_of(self, path_graph):
        engine = PrunedBFS(path_graph, [3, 1, 0, 2])
        assert engine.rank_of(3) == 0
        with pytest.raises(GraphError):
            engine.rank_of(-1)

    def test_faster_label_structure_smaller_than_weighted(self, random_graph):
        """Hop metrics are 'tighter': BFS labels never exceed weighted ones
        by much on the same (weighted) graph -- sanity of both engines."""
        bfs_store, _ = build_serial_bfs(random_graph)
        assert bfs_store.avg_label_size > 0
