"""Tests for repro.obs.audit: the index-health auditor."""

import json

import numpy as np
import pytest

from repro.check.invariants import verify_index
from repro.core import stats as core_stats
from repro.core.index import PLLIndex
from repro.core.labels import LabelStore
from repro.core.serial import build_serial
from repro.errors import CheckError
from repro.generators.random_graphs import gnm_random_graph
from repro.obs.audit import (
    AUDIT_SCHEMA,
    audit_index,
    diff_reports,
    load_report,
    render_diff,
    render_report,
    validate_report,
)


@pytest.fixture
def graph():
    return gnm_random_graph(70, 180, seed=5)


@pytest.fixture
def index(graph):
    return PLLIndex.build(graph)


def _inject_redundant_entry(index):
    """Clone *index* with one provably dominated label entry added.

    Find entries (v, h1, d1) and (u, h1, d2) sharing a hub h1 with
    rank[u] > h1: the new entry (v, rank[u], d1 + d2) is then dominated
    by construction — the earlier common hub h1 covers the v--u pair
    within exactly that distance.
    """
    store = index.store
    rank = index.rank
    n = store.n
    for v in range(n):
        hubs_v = store.finalized_hubs(v)
        dists_v = store.finalized_dists(v)
        for i in range(len(hubs_v)):
            h1 = int(hubs_v[i])
            for u in range(n):
                if u == v or int(rank[u]) <= h1:
                    continue
                hubs_u = store.finalized_hubs(u)
                pos = int(np.searchsorted(hubs_u, h1))
                if pos < len(hubs_u) and int(hubs_u[pos]) == h1:
                    if int(rank[u]) in set(int(x) for x in hubs_v):
                        continue  # entry already present
                    d = float(dists_v[i]) + float(
                        store.finalized_dists(u)[pos]
                    )
                    clone = store.copy()
                    clone.add(v, int(rank[u]), d)
                    clone.finalize()
                    return PLLIndex(clone, index.order, graph=index.graph)
    raise AssertionError("no injectable redundant entry found")


class TestAuditReport:
    def test_schema_and_validation(self, index):
        report = audit_index(index)
        assert report["schema"] == AUDIT_SCHEMA
        validate_report(report)  # must not raise

    def test_json_roundtrip(self, index, tmp_path):
        report = audit_index(index, source="test")
        path = tmp_path / "audit.json"
        path.write_text(json.dumps(report))
        loaded = load_report(str(path))
        assert loaded == json.loads(json.dumps(report))
        validate_report(loaded)

    def test_label_cdf_matches_core_stats(self, graph):
        # The audit's coverage stats must agree with repro.core.stats
        # computed from per-root build telemetry on the same build.
        from repro.graph.order import by_degree

        store, stats = build_serial(graph, collect_per_root=True)
        index = PLLIndex(store, by_degree(graph), graph=graph)
        report = audit_index(index)
        build_cdf = core_stats.label_cdf(stats.per_root)
        for frac in (0.5, 0.9, 0.99):
            assert report["hub_coverage"]["roots_to_reach"][
                f"{frac:g}"
            ] == core_stats.roots_to_reach(build_cdf, frac)
        assert report["total_entries"] == store.total_entries

    def test_label_size_distribution(self, index):
        report = audit_index(index)
        sizes = np.diff(index.store.finalized_arrays()[0])
        ls = report["label_sizes"]
        assert ls["max"] == int(sizes.max())
        assert ls["mean"] == pytest.approx(float(sizes.mean()))
        assert ls["p50"] == pytest.approx(float(np.percentile(sizes, 50)))
        assert ls["p95"] == pytest.approx(float(np.percentile(sizes, 95)))

    def test_serial_build_has_zero_dominated(self, index):
        report = audit_index(index)
        assert report["dominated"]["checked"] is True
        assert report["dominated"]["count"] == 0
        assert report["dominated"]["examples"] == []

    def test_dominated_detection_on_hand_built_labels(self):
        # Path 0 -1- 1 -1- 2, ordering 0 < 1 < 2 (rank = vertex id).
        # Correct canonical labels, plus one redundant entry: (2, hub 1)
        # at d=1 is dominated by hub 0: L(1) has (0, 1), L(2) has (0, 2)
        # and 1 + 2 > ... no — domination needs the *hub vertex* and v
        # to share an earlier hub within the distance.  Entry (v=2,
        # h=1, d=1): hub vertex is 1; common earlier hub 0 with
        # d(0,1)=1 and d(0,2)=2 gives 1+2=3 > 1, NOT dominated.  Instead
        # inject (v=2, h=1, d=5): 1+2=3 <= 5 — dominated.
        store = LabelStore(3)
        store.add(0, 0, 0.0)
        store.add(1, 0, 1.0)
        store.add(1, 1, 0.0)
        store.add(2, 0, 2.0)
        store.add(2, 1, 5.0)  # redundant: hub 0 covers 1--2 at 3 <= 5
        store.add(2, 2, 0.0)
        store.finalize()
        index = PLLIndex(store, [0, 1, 2])
        report = audit_index(index)
        assert report["dominated"]["count"] == 1
        assert report["dominated"]["examples"] == [
            {"vertex": 2, "hub_rank": 1, "dist": 5.0}
        ]

    def test_agrees_with_invariant_verifier(self, graph, index):
        injected = _inject_redundant_entry(index)
        report = audit_index(injected)
        verifier = verify_index(injected, graph=graph, samples=8)
        assert report["dominated"]["count"] == verifier.redundant_labels
        assert report["dominated"]["count"] >= 1

    def test_skip_dominated_scan(self, index):
        report = audit_index(index, check_dominated=False)
        validate_report(report)
        assert report["dominated"]["checked"] is False
        assert report["dominated"]["count"] is None

    def test_memory_attribution(self, index):
        report = audit_index(index)
        mem = report["memory"]
        indptr, hubs, dists = index.store.finalized_arrays()
        assert mem["indptr_bytes"] == indptr.nbytes
        assert mem["hubs_bytes"] == hubs.nbytes
        assert mem["dists_bytes"] == dists.nbytes
        assert mem["total_bytes"] == (
            indptr.nbytes + hubs.nbytes + dists.nbytes
        )
        assert mem["mmap"] is False
        assert mem["resident_bytes_estimate"] == mem["total_bytes"]

    def test_memory_attribution_mmap(self, index, tmp_path):
        bundle = tmp_path / "g.index"
        index.save(str(bundle), format="dir")
        loaded = PLLIndex.load(str(bundle), mmap=True)
        report = audit_index(loaded, check_dominated=False)
        mem = report["memory"]
        assert mem["mmap"] is True
        assert mem["resident_bytes_estimate"] == mem["indptr_bytes"]

    def test_render_report(self, index):
        text = render_report(audit_index(index))
        assert "index audit" in text
        assert "canonical" in text

    def test_validate_rejects_bad_reports(self, index):
        report = audit_index(index)
        with pytest.raises(CheckError):
            validate_report("not a dict")
        with pytest.raises(CheckError):
            validate_report({**report, "schema": "parapll-audit/999"})
        broken = {k: v for k, v in report.items() if k != "memory"}
        with pytest.raises(CheckError):
            validate_report(broken)
        bad_sizes = dict(report["label_sizes"])
        del bad_sizes["p95"]
        with pytest.raises(CheckError):
            validate_report({**report, "label_sizes": bad_sizes})


class TestAuditDiff:
    def test_identical_reports_no_regressions(self, index):
        report = audit_index(index)
        diff = diff_reports(report, report)
        assert diff["comparable"] is True
        assert diff["total_entries"]["delta"] == 0
        assert diff["regressions"] == []
        assert "verdict: OK" in render_diff(diff)

    def test_diff_different_rank_orders(self, graph):
        # Descending degree (paper) vs. identity ordering: the worse
        # order inflates the label set, which the diff must flag.
        good = PLLIndex.build(graph)
        bad = PLLIndex.build(graph, order=list(range(graph.num_vertices)))
        diff = diff_reports(audit_index(good), audit_index(bad))
        assert diff["total_entries"]["delta"] > 0
        assert any("label entries grew" in r for r in diff["regressions"])
        assert "REGRESSED" in render_diff(diff)

    def test_diff_flags_injected_redundant_entry(self, index):
        baseline = audit_index(index)
        candidate = audit_index(_inject_redundant_entry(index))
        diff = diff_reports(baseline, candidate)
        assert diff["dominated"]["a"] == 0
        assert diff["dominated"]["b"] >= 1
        assert diff["dominated"]["delta"] >= 1
        assert any("dominated" in r for r in diff["regressions"])

    def test_diff_validates_inputs(self, index):
        report = audit_index(index)
        with pytest.raises(CheckError):
            diff_reports(report, {"schema": "nope"})

    def test_incomparable_sizes_noted(self, index):
        other = PLLIndex.build(gnm_random_graph(30, 70, seed=9))
        diff = diff_reports(audit_index(index), audit_index(other))
        assert diff["comparable"] is False
        assert "different vertex counts" in render_diff(diff)


class TestServerAuditOp:
    def test_audit_op_roundtrip(self, index):
        from repro.service.oracle import DistanceOracle
        from repro.service.server import DistanceClient, DistanceServer

        oracle = DistanceOracle(index)
        with DistanceServer(oracle, port=0) as server:
            with DistanceClient("127.0.0.1", server.port) as client:
                report = client.audit()
                validate_report(report)
                assert report["dominated"]["count"] == 0
                quick = client.audit(dominated=False)
                assert quick["dominated"]["checked"] is False


class TestAuditCli:
    def test_audit_run_and_diff(self, graph, tmp_path, capsys):
        from repro.cli import main
        from repro.io.npz import save_graph_npz

        gpath = tmp_path / "g.npz"
        save_graph_npz(graph, str(gpath))
        index = PLLIndex.build(graph)
        ipath = tmp_path / "g.index.npz"
        index.save(str(ipath))
        rpath = tmp_path / "audit.json"

        assert main([
            "audit", "run", "--index", str(ipath),
            "--out", str(rpath), "--fail-on-dominated",
        ]) == 0
        out = capsys.readouterr().out
        assert "index audit" in out and "0 entr(ies)" in out
        validate_report(json.loads(rpath.read_text()))

        # Injected redundant entry -> diff flags it and exits 1.
        injected = _inject_redundant_entry(index)
        ipath2 = tmp_path / "bad.index.npz"
        injected.save(str(ipath2))
        assert main([
            "audit", "diff", str(rpath), str(ipath2),
            "--fail-on-regression",
        ]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_audit_run_fails_on_dominated(self, graph, tmp_path, capsys):
        from repro.cli import main

        index = _inject_redundant_entry(PLLIndex.build(graph))
        ipath = tmp_path / "bad.index.npz"
        index.save(str(ipath))
        assert main([
            "audit", "run", "--index", str(ipath), "--fail-on-dominated",
        ]) == 1
        assert "redundant" in capsys.readouterr().out

    def test_index_progress_jsonl(self, graph, tmp_path, capsys):
        from repro.cli import main
        from repro.io.npz import save_graph_npz
        from repro.obs.buildmon import BUILDMON_SCHEMA

        gpath = tmp_path / "g.npz"
        save_graph_npz(graph, str(gpath))
        jpath = tmp_path / "progress.jsonl"
        assert main([
            "index", "--graph", str(gpath),
            "--out", str(tmp_path / "g.index.npz"),
            "--progress-jsonl", str(jpath),
        ]) == 0
        lines = jpath.read_text().strip().splitlines()
        assert json.loads(lines[0])["schema"] == BUILDMON_SCHEMA
        assert any(
            json.loads(line)["kind"] == "build_progress"
            for line in lines[1:]
        )

    def test_obs_reports_roots_to_reach(self, graph, tmp_path, capsys):
        from repro.cli import main
        from repro.io.npz import save_graph_npz

        gpath = tmp_path / "g.npz"
        save_graph_npz(graph, str(gpath))
        assert main(["obs", "--graph", str(gpath)]) == 0
        out = capsys.readouterr().out
        assert "90% from the first" in out


class TestHubCoverageStats:
    def test_hub_contribution_counts_entries(self, index):
        contrib = core_stats.hub_contribution(index.store)
        assert contrib.sum() == index.store.total_entries
        # Every vertex carries its own hub, so the top-ranked hub
        # appears at least once; counts are per rank position.
        assert contrib[0] >= 1

    def test_hub_coverage_cdf_monotone_to_one(self, index):
        cdf = core_stats.hub_coverage_cdf(index.store)
        assert len(cdf) == index.store.n
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == pytest.approx(1.0)

    def test_empty_store(self):
        store = LabelStore(4)
        store.finalize()
        assert core_stats.hub_coverage_cdf(store).tolist() == [0.0] * 4
