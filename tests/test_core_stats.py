"""Tests for label statistics and the Figure-6 CDF helpers."""

import numpy as np
import pytest

from repro.core.serial import build_serial
from repro.core.stats import (
    label_cdf,
    label_size_summary,
    per_root_label_counts,
    roots_to_reach,
)
from repro.types import SearchStats


def stats_with(counts):
    return [SearchStats(labels_added=c) for c in counts]


class TestLabelCDF:
    def test_monotone_to_one(self):
        cdf = label_cdf(stats_with([5, 3, 2]))
        assert cdf.tolist() == [0.5, 0.8, 1.0]
        assert np.all(np.diff(cdf) >= 0)

    def test_empty(self):
        assert len(label_cdf([])) == 0

    def test_all_zero(self):
        cdf = label_cdf(stats_with([0, 0]))
        assert cdf.tolist() == [0.0, 0.0]

    def test_real_build_ends_at_one(self, random_graph):
        _store, stats = build_serial(random_graph, collect_per_root=True)
        cdf = label_cdf(stats.per_root)
        assert cdf[-1] == pytest.approx(1.0)

    def test_front_loaded_on_real_graph(self, medium_graph):
        """The Figure-6 phenomenon: early roots create most labels."""
        _store, stats = build_serial(medium_graph, collect_per_root=True)
        cdf = label_cdf(stats.per_root)
        tenth = len(cdf) // 10
        assert cdf[tenth] > 0.5


class TestRootsToReach:
    def test_basic(self):
        cdf = label_cdf(stats_with([9, 1, 1]))  # 9/11, 10/11, 1.0
        assert roots_to_reach(cdf, 0.5) == 1
        assert roots_to_reach(cdf, 0.95) == 3

    def test_exact_boundary(self):
        cdf = np.array([0.5, 1.0])
        assert roots_to_reach(cdf, 0.5) == 1

    def test_empty(self):
        assert roots_to_reach(np.array([]), 0.9) == 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            roots_to_reach(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            roots_to_reach(np.array([1.0]), 1.5)


class TestSummary:
    def test_summary_fields(self):
        s = label_size_summary([1, 2, 3, 4])
        assert s["mean"] == 2.5
        assert s["max"] == 4
        assert s["min"] == 1
        assert s["median"] == 2.5

    def test_empty_summary(self):
        s = label_size_summary([])
        assert s["mean"] == 0.0
        assert s["max"] == 0.0

    def test_per_root_counts(self):
        assert per_root_label_counts(stats_with([3, 0, 7])) == [3, 0, 7]


class TestPublicSurface:
    def test_all_exports_complete(self):
        # Regression: roots_to_reach and per_root_label_counts were
        # documented API but missing from __all__, so star imports and
        # API-surface tooling silently dropped them.
        from repro.core import stats as mod

        assert "roots_to_reach" in mod.__all__
        assert "per_root_label_counts" in mod.__all__
        for name in mod.__all__:
            assert callable(getattr(mod, name))
