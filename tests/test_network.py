"""Tests for the cluster network cost model."""

import pytest

from repro.cluster.network import NetworkModel
from repro.errors import CommError


class TestStages:
    def test_single_node_no_stages(self):
        assert NetworkModel().stages(1) == 0

    def test_powers_of_two(self):
        net = NetworkModel()
        assert net.stages(2) == 1
        assert net.stages(4) == 2
        assert net.stages(8) == 3

    def test_non_powers_round_up(self):
        net = NetworkModel()
        assert net.stages(3) == 2
        assert net.stages(6) == 3

    def test_invalid(self):
        with pytest.raises(CommError):
            NetworkModel().stages(0)


class TestBroadcast:
    def test_formula(self):
        net = NetworkModel(latency_units=10.0, per_entry_units=2.0)
        # 4 nodes -> 2 stages; (10 + 2*5) * 2 = 40.
        assert net.broadcast_units(5, 4) == 40.0

    def test_zero_on_single_node(self):
        assert NetworkModel().broadcast_units(100, 1) == 0.0

    def test_negative_entries(self):
        with pytest.raises(CommError):
            NetworkModel().broadcast_units(-1, 2)


class TestExchange:
    def test_sums_broadcasts(self):
        net = NetworkModel(latency_units=1.0, per_entry_units=1.0)
        # q=2, 1 stage each: (1+3) + (1+5) = 10.
        assert net.exchange_units([3, 5], 2) == 10.0

    def test_grows_with_nodes(self):
        net = NetworkModel()
        a = net.exchange_units([10, 10], 2)
        b = net.exchange_units([10, 10, 10, 10], 4)
        assert b > a

    def test_wrong_count(self):
        with pytest.raises(CommError):
            NetworkModel().exchange_units([1, 2, 3], 2)

    def test_negative_params_rejected(self):
        with pytest.raises(CommError):
            NetworkModel(latency_units=-1.0)
        with pytest.raises(CommError):
            NetworkModel(per_entry_units=-0.5)
