"""Tests for repro.obs.context: cross-rank trace propagation."""

import json

import pytest

from repro import obs
from repro.cluster.comm import SimComm
from repro.cluster.runner import run_cluster_threads
from repro.cluster.threadcomm import ThreadComm, run_ranks
from repro.core.index import PLLIndex
from repro.generators.random_graphs import gnm_random_graph
from repro.obs import context as ctxmod
from repro.obs.context import (
    Envelope,
    TraceContext,
    activate,
    current,
    new_context,
    set_current,
    stamp,
    unwrap,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    set_current(None)
    yield
    obs.configure(tracing=False)
    obs.reset()
    set_current(None)


@pytest.fixture()
def tracing():
    obs.configure(tracing=True)
    yield
    obs.configure(tracing=False)


class TestTraceContext:
    def test_new_context_unique_ids(self):
        a, b = new_context(), new_context()
        assert a.trace_id != b.trace_id
        assert a.span_id is None and a.rank is None

    def test_child_shares_trace_id(self):
        root = new_context()
        child = root.child(rank=3)
        assert child.trace_id == root.trace_id
        assert child.rank == 3
        grandchild = child.child(span_id=7)
        assert grandchild.rank == 3 and grandchild.span_id == 7

    def test_dict_round_trip(self):
        ctx = TraceContext(trace_id="t1-9", span_id=4, rank=2)
        doc = ctx.to_dict()
        assert doc == {"trace_id": "t1-9", "span_id": 4, "rank": 2}
        assert TraceContext.from_dict(doc) == ctx
        assert TraceContext.from_dict(json.loads(json.dumps(doc))) == ctx

    def test_frozen(self):
        ctx = new_context()
        with pytest.raises(AttributeError):
            ctx.rank = 1


class TestThreadLocalCurrent:
    def test_default_is_none(self):
        assert current() is None

    def test_activate_scopes_and_restores(self):
        outer = new_context()
        inner = new_context()
        with activate(outer):
            assert current() is outer
            with activate(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_thread_isolation(self):
        import threading

        seen = []
        with activate(new_context()):
            th = threading.Thread(target=lambda: seen.append(current()))
            th.start()
            th.join()
        assert seen == [None]


class TestStampUnwrap:
    def test_stamp_without_context(self):
        env = stamp({"k": 1})
        assert isinstance(env, Envelope)
        assert env.ctx is None
        assert env.flow_id
        payload, ctx, flow_id = unwrap(env)
        assert payload == {"k": 1} and ctx is None and flow_id == env.flow_id

    def test_stamp_carries_and_reranks_context(self):
        root = new_context(rank=0)
        with activate(root):
            env = stamp([1, 2], rank=5)
        assert env.ctx.rank == 5
        assert env.ctx.trace_id == root.trace_id

    def test_unwrap_passthrough(self):
        assert unwrap([1, 2]) == ([1, 2], None, None)

    def test_flow_ids_unique(self):
        assert ctxmod.next_flow_id() != ctxmod.next_flow_id()


class TestThreadCommPropagation:
    def test_payloads_arrive_unwrapped(self):
        comm = ThreadComm(2, timeout=5.0)

        def program(rank, c):
            if rank == 0:
                c.send({"hello": 1}, source=0, dest=1)
                return None
            return c.recv(source=0, dest=1)

        results = run_ranks(comm, program, trace_context=new_context())
        assert results[1] == {"hello": 1}

    def test_send_recv_events_share_flow_and_trace(self, tracing):
        comm = ThreadComm(2, timeout=5.0)
        build_ctx = new_context()

        def program(rank, c):
            if rank == 0:
                c.send("payload", source=0, dest=1)
                return None
            return c.recv(source=0, dest=1)

        run_ranks(comm, program, trace_context=build_ctx)
        records = obs.get_tracer().records()
        sends = [r for r in records if r.name == "comm_send"]
        recvs = [r for r in records if r.name == "comm_recv"]
        assert sends and recvs
        assert sends[0].attrs["flow_id"] == recvs[0].attrs["flow_id"]
        assert sends[0].attrs["trace_id"] == build_ctx.trace_id
        assert recvs[0].attrs["trace_id"] == build_ctx.trace_id
        assert sends[0].attrs["src"] == 0 and sends[0].attrs["dest"] == 1

    def test_allgather_emits_recv_per_remote_rank(self, tracing):
        comm = ThreadComm(3, timeout=5.0)

        def program(rank, c):
            return c.allgather(rank, [rank])

        results = run_ranks(comm, program, trace_context=new_context())
        assert results[0] == [[0], [1], [2]]
        records = obs.get_tracer().records()
        recvs = [r for r in records if r.name == "comm_recv"]
        # Each of the 3 ranks receives from its 2 remote peers.
        assert len(recvs) == 6

    def test_each_rank_gets_per_rank_child_context(self):
        build_ctx = new_context()
        comm = ThreadComm(2, timeout=5.0)

        def program(rank, c):
            ctx = current()
            return (ctx.trace_id, ctx.rank)

        results = run_ranks(comm, program, trace_context=build_ctx)
        assert results == [(build_ctx.trace_id, 0), (build_ctx.trace_id, 1)]


class TestSimCommPropagation:
    def test_payload_and_cost_unaffected_by_envelopes(self):
        from repro.cluster.network import NetworkModel

        comm = SimComm(
            2,
            network=NetworkModel(latency_units=2.0, per_entry_units=1.0),
            seconds_per_unit=1.0,
        )
        comm.send([0, 0], source=0, dest=1)
        # Cost counts payload entries, never envelope overhead.
        assert comm.clocks[0] == 4.0
        assert comm.recv(source=0, dest=1) == [0, 0]

    def test_sim_events_carry_sim_clock(self, tracing):
        comm = SimComm(2)
        with activate(new_context()):
            comm.send([1], source=0, dest=1)
            comm.recv(source=0, dest=1)
        records = obs.get_tracer().records()
        sends = [r for r in records if r.name == "comm_send"]
        recvs = [r for r in records if r.name == "comm_recv"]
        assert sends and recvs
        assert sends[0].attrs["clock"] == "sim"
        assert sends[0].attrs["flow_id"] == recvs[0].attrs["flow_id"]


class TestStitchedClusterTrace:
    def test_cluster_build_yields_one_stitched_trace(self, tracing):
        """Acceptance: a c>1 build produces spans from every rank under
        one trace id, and the Chrome trace links them by flow events."""
        graph = gnm_random_graph(30, 80, seed=5)
        index = run_cluster_threads(graph, 2, syncs=2)

        records = obs.get_tracer().records()
        rank_spans = [r for r in records if r.name == "cluster_rank"]
        assert {r.attrs["rank"] for r in rank_spans} == {0, 1}
        trace_ids = {r.attrs["trace_id"] for r in rank_spans}
        assert len(trace_ids) == 1

        comm_events = [
            r
            for r in records
            if r.name in ("comm_send", "comm_recv")
        ]
        assert comm_events
        assert {
            e.attrs["trace_id"] for e in comm_events
        } == trace_ids

        doc = obs.chrome_trace()
        flows_s = [e for e in doc["traceEvents"] if e.get("ph") == "s"]
        flows_f = [e for e in doc["traceEvents"] if e.get("ph") == "f"]
        assert flows_s and flows_f
        assert {e["id"] for e in flows_f} <= {e["id"] for e in flows_s}

        # The build stays exact.
        serial = PLLIndex.build(graph)
        for s, t in [(0, 1), (3, 17), (5, 29)]:
            assert index.distance(s, t) == serial.distance(s, t)

    def test_tracing_off_build_has_no_comm_events(self):
        graph = gnm_random_graph(20, 50, seed=5)
        run_cluster_threads(graph, 2, syncs=1)
        names = {r.name for r in obs.get_tracer().records()}
        assert "comm_send" not in names and "comm_recv" not in names
