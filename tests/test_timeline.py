"""Tests for Chrome-trace export and critical-path analysis."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.timeline import (
    PID_SIM,
    PID_WALL,
    TimelineTask,
    analyze_critical_path,
    chrome_trace,
    extract_tasks,
    render_critical_path,
    write_chrome_trace,
)
from repro.obs.trace import TraceRecord


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    obs.configure(metrics=True, tracing=False, trace_capacity=4096)
    yield
    obs.reset()
    obs.configure(metrics=True, tracing=False, trace_capacity=4096)


def _span(name, ts, dur, span_id, parent_id=None, thread="w", **attrs):
    return TraceRecord(
        name=name,
        kind="span",
        ts=ts,
        dur=dur,
        span_id=span_id,
        parent_id=parent_id,
        thread=thread,
        attrs=attrs,
    )


def _sim_event(name, start, finish, worker, span_id, **attrs):
    attrs = dict(attrs, start=start, finish=finish, worker=worker, clock="sim")
    return TraceRecord(
        name=name,
        kind="event",
        ts=finish,
        dur=None,
        span_id=span_id,
        parent_id=None,
        thread="sim",
        attrs=attrs,
    )


class TestExtractTasks:
    def test_span_becomes_task(self):
        tasks = extract_tasks([_span("root_search", 1.0, 0.5, span_id=1)])
        assert len(tasks) == 1
        t = tasks[0]
        assert (t.start, t.end) == (1.0, 1.5)
        assert t.duration == pytest.approx(0.5)
        assert not t.sim

    def test_sim_event_becomes_task_on_worker_lane(self):
        tasks = extract_tasks(
            [_sim_event("root_search", 2.0, 5.0, worker=3, span_id=1)]
        )
        assert len(tasks) == 1
        assert tasks[0].lane == "worker 3"
        assert tasks[0].sim
        assert (tasks[0].start, tasks[0].end) == (2.0, 5.0)

    def test_instant_event_skipped(self):
        rec = TraceRecord(
            name="mark", kind="event", ts=1.0, dur=None,
            span_id=1, parent_id=None, thread="t", attrs={},
        )
        assert extract_tasks([rec]) == []

    def test_lock_wait_carried(self):
        tasks = extract_tasks(
            [_span("root_search", 0.0, 1.0, span_id=1, lock_wait=0.25)]
        )
        assert tasks[0].lock_wait == pytest.approx(0.25)


class TestChromeTrace:
    def _records(self):
        return [
            _span("root_search", 10.0, 0.5, span_id=1, worker=0),
            _span("root_search", 10.6, 0.4, span_id=2, worker=1),
            _sim_event("root_search", 0.0, 3.0, worker=0, span_id=3),
        ]

    def test_required_keys_on_every_event(self):
        doc = chrome_trace(self._records())
        assert "traceEvents" in doc
        for event in doc["traceEvents"]:
            for key in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert key in event, f"{key} missing from {event}"

    def test_complete_events_microseconds(self):
        doc = chrome_trace(self._records())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        wall = [e for e in xs if e["pid"] == PID_WALL]
        # Rebased to the wall origin (10.0 s): 0 and 0.6 s in µs.
        assert [e["ts"] for e in wall] == [0.0, 600000.0]
        assert [e["dur"] for e in wall] == [500000.0, 400000.0]

    def test_clock_domains_separate_pids(self):
        doc = chrome_trace(self._records())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in xs} == {PID_WALL, PID_SIM}
        sim = [e for e in xs if e["pid"] == PID_SIM]
        assert sim[0]["ts"] == 0.0  # rebased to its own origin
        assert sim[0]["dur"] == pytest.approx(3.0e6)

    def test_events_sorted_within_process(self):
        doc = chrome_trace(self._records())
        xs = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert xs == sorted(xs, key=lambda e: (e["pid"], e["ts"], e["tid"]))

    def test_metadata_names_processes_and_lanes(self):
        doc = chrome_trace(self._records())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        lanes = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert lanes == {"worker 0", "worker 1"}

    def test_one_track_per_sim_worker(self):
        obs.configure(tracing=True)
        from repro.generators.random_graphs import gnm_random_graph
        from repro.sim.executor import simulate_intra_node

        graph = gnm_random_graph(60, 150, seed=3)
        simulate_intra_node(graph, 4, policy="dynamic", seed=5)
        doc = chrome_trace()
        sim_tids = {
            e["tid"]
            for e in doc["traceEvents"]
            if e["pid"] == PID_SIM and e["ph"] == "X"
        }
        assert len(sim_tids) == 4

    def test_instant_event_phase(self):
        rec = TraceRecord(
            name="sync", kind="event", ts=1.0, dur=None,
            span_id=9, parent_id=None, thread="t", attrs={},
        )
        doc = chrome_trace([rec])
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), self._records())
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count
        assert loaded["otherData"]["schema"] == "chrome-trace/1"

    def test_args_carry_span_linkage(self):
        doc = chrome_trace(
            [_span("a", 0.0, 1.0, span_id=7, parent_id=3, worker=0)]
        )
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["args"]["span_id"] == 7
        assert xs[0]["args"]["parent_id"] == 3


class TestCriticalPath:
    def _hand_built(self):
        # worker 0: [0, 4] then [4, 6];  worker 1: [0, 3] then [4.5, 10]
        # The last task (end 10) starts at 4.5, after w0's [0, 4] ended:
        # chain is [0,4] -> [4.5,10] unless a same-lane tie wins.
        return [
            _span("root_search", 0.0, 4.0, span_id=1, worker=0),
            _span("root_search", 4.0, 2.0, span_id=2, worker=0,
                  lock_wait=0.5),
            _span("root_search", 0.0, 3.0, span_id=3, worker=1),
            _span("root_search", 4.5, 5.5, span_id=4, worker=1),
        ]

    def test_fractions_sum_to_one(self):
        report = analyze_critical_path(self._hand_built())
        assert report.makespan == pytest.approx(10.0)
        for lane in report.lanes:
            assert lane.busy + lane.lock_wait + lane.idle == pytest.approx(
                1.0
            )

    def test_lane_accounting(self):
        report = analyze_critical_path(self._hand_built())
        by_lane = {lane.lane: lane for lane in report.lanes}
        w0 = by_lane["worker 0"]
        assert w0.busy_seconds == pytest.approx(5.5)  # 6.0 - 0.5 lock
        assert w0.lock_wait_seconds == pytest.approx(0.5)
        assert w0.idle_seconds == pytest.approx(4.0)
        w1 = by_lane["worker 1"]
        assert w1.busy_seconds == pytest.approx(8.5)
        assert w1.idle_seconds == pytest.approx(1.5)

    def test_chain_walks_cross_lane_dependency(self):
        report = analyze_critical_path(self._hand_built())
        assert [t.span_id for t in report.chain] == [1, 4]
        assert report.chain_seconds == pytest.approx(9.5)
        assert report.chain_coverage == pytest.approx(0.95)

    def test_same_lane_predecessor_preferred_on_tie(self):
        tasks = [
            _span("a", 0.0, 2.0, span_id=1, worker=0),
            _span("b", 0.0, 2.0, span_id=2, worker=1),
            _span("c", 2.0, 1.0, span_id=3, worker=1),
        ]
        report = analyze_critical_path(tasks)
        # Both span 1 and 2 end exactly when span 3 starts; the
        # same-lane predecessor (span 2) explains the schedule better.
        assert [t.span_id for t in report.chain] == [2, 3]

    def test_top_k_slowest(self):
        report = analyze_critical_path(self._hand_built(), top_k=2)
        durations = [t.duration for t in report.slowest]
        assert durations == sorted(durations, reverse=True)
        assert len(report.slowest) == 2
        assert report.slowest[0].duration == pytest.approx(5.5)

    def test_container_span_dropped(self):
        tasks = self._hand_built() + [
            _span("build_parallel_threads", 0.0, 10.5, span_id=99,
                  thread="MainThread"),
        ]
        report = analyze_critical_path(tasks)
        assert all(lane.lane != "MainThread" for lane in report.lanes)
        assert report.makespan == pytest.approx(10.0)

    def test_sim_domain_preferred_when_mixed(self):
        mixed = self._hand_built() + [
            _sim_event("root_search", 0.0, 100.0, worker=0, span_id=50),
        ]
        report = analyze_critical_path(mixed)
        assert report.sim
        assert report.makespan == pytest.approx(100.0)

    def test_task_names_filter(self):
        tasks = self._hand_built() + [
            _span("commit", 9.0, 0.5, span_id=60, worker=0),
        ]
        report = analyze_critical_path(tasks, task_names=("root_search",))
        assert all(t.name == "root_search" for t in report.chain)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            analyze_critical_path([])

    def test_render_mentions_lanes_and_chain(self):
        text = render_critical_path(
            analyze_critical_path(self._hand_built())
        )
        assert "critical path" in text
        assert "worker 0" in text and "worker 1" in text
        assert "makespan" in text

    def test_real_threaded_build_end_to_end(self):
        obs.configure(tracing=True)
        from repro.generators.random_graphs import gnm_random_graph
        from repro.parallel.threads import build_parallel_threads

        graph = gnm_random_graph(60, 150, seed=3)
        build_parallel_threads(graph, 2)
        report = analyze_critical_path()
        assert not report.sim
        # Dynamic assignment on a small graph can starve a worker, so
        # only the workers that got roots have lanes.
        assert 1 <= len(report.lanes) <= 2
        assert all(lane.lane.startswith("worker") for lane in report.lanes)
        for lane in report.lanes:
            assert lane.busy + lane.lock_wait + lane.idle == pytest.approx(
                1.0
            )
        assert 0 < report.chain_coverage <= 1.0 + 1e-9


def _comm_event(name, ts, flow, flow_id, thread, span_id, **attrs):
    attrs = dict(attrs, flow=flow, flow_id=flow_id)
    return TraceRecord(
        name=name,
        kind="event",
        ts=ts,
        dur=None,
        span_id=span_id,
        parent_id=None,
        thread=thread,
        attrs=attrs,
    )


class TestFlowEvents:
    def _paired_records(self):
        return [
            _comm_event(
                "comm_send", 1.0, "out", "f1-1", "rank-0", 10,
                src=0, dest=1,
            ),
            _comm_event(
                "comm_recv", 1.5, "in", "f1-1", "rank-1", 11,
                src=0, dest=1,
            ),
        ]

    def test_matched_pair_becomes_flow_arrow(self):
        doc = chrome_trace(self._paired_records())
        starts = [e for e in doc["traceEvents"] if e.get("ph") == "s"]
        finishes = [e for e in doc["traceEvents"] if e.get("ph") == "f"]
        assert len(starts) == 1 and len(finishes) == 1
        s, f = starts[0], finishes[0]
        assert s["id"] == f["id"] == "f1-1>11"
        assert s["cat"] == f["cat"] == "comm"
        assert f["bp"] == "e"
        assert f["ts"] >= s["ts"]
        assert s["args"]["flow_id"] == "f1-1"

    def test_flow_start_anchored_at_sender_lane(self):
        doc = chrome_trace(self._paired_records())
        sends = [
            e
            for e in doc["traceEvents"]
            if e["name"] == "comm_send" and e["ph"] == "i"
        ]
        starts = [e for e in doc["traceEvents"] if e.get("ph") == "s"]
        assert starts[0]["pid"] == sends[0]["pid"]
        assert starts[0]["tid"] == sends[0]["tid"]

    def test_orphan_recv_emits_no_arrow(self):
        records = [
            _comm_event(
                "comm_recv", 2.0, "in", "f9-9", "rank-1", 7,
                src=0, dest=1,
            )
        ]
        doc = chrome_trace(records)
        assert not [
            e for e in doc["traceEvents"] if e.get("ph") in ("s", "f")
        ]

    def test_broadcast_fanout_gets_unique_edge_ids(self):
        records = [
            _comm_event(
                "comm_send", 1.0, "out", "f2-1", "rank-0", 20,
                src=0, dest=None,
            ),
            _comm_event(
                "comm_recv", 1.2, "in", "f2-1", "rank-1", 21,
                src=0, dest=1,
            ),
            _comm_event(
                "comm_recv", 1.3, "in", "f2-1", "rank-2", 22,
                src=0, dest=2,
            ),
        ]
        doc = chrome_trace(records)
        starts = [e for e in doc["traceEvents"] if e.get("ph") == "s"]
        assert {e["id"] for e in starts} == {"f2-1>21", "f2-1>22"}
