"""Tests for the deep structural validator."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.validate import check_graph

from .conftest import build_graph


def test_accepts_builder_output(random_graph):
    check_graph(random_graph)


def test_accepts_empty():
    g = build_graph([], n=3)
    check_graph(g)


def _raw(indptr, indices, weights):
    """Bypass constructor checks where possible by mutating afterwards."""
    g = build_graph([(0, 1, 1.0), (1, 2, 1.0)])
    g.indptr = np.asarray(indptr, dtype=np.int64)
    g.indices = np.asarray(indices, dtype=np.int32)
    g.weights = np.asarray(weights, dtype=np.float64)
    return g


def test_detects_unsorted_neighbors():
    # Vertex 1's list is [2, 0]: unsorted.
    g = _raw([0, 1, 3, 4], [1, 2, 0, 1], [1.0, 1.0, 1.0, 1.0])
    with pytest.raises(GraphError, match="ascending"):
        check_graph(g)


def test_detects_duplicate_neighbor():
    g = _raw([0, 2, 4], [1, 1, 0, 0], [1.0, 1.0, 1.0, 1.0])
    with pytest.raises(GraphError, match="ascending"):
        check_graph(g)


def test_detects_self_loop():
    g = _raw([0, 1, 2], [0, 0], [1.0, 1.0])
    with pytest.raises(GraphError, match="self loop"):
        check_graph(g)


def test_detects_asymmetric_adjacency():
    # Arc 0->1 and 0->2 but reverse arcs are 1->0, 2->0 replaced wrongly.
    g = _raw([0, 2, 3, 4], [1, 2, 0, 1], [1.0, 1.0, 1.0, 1.0])
    with pytest.raises(GraphError):
        check_graph(g)


def test_detects_asymmetric_weights():
    g = _raw([0, 1, 2], [1, 0], [1.0, 2.0])
    with pytest.raises(GraphError, match="weights"):
        check_graph(g)
