"""Tests for the thread-backed communicator and the per-rank runner."""

import pytest

from repro.baselines.dijkstra import dijkstra_sssp
from repro.cluster.runner import run_cluster_threads
from repro.cluster.threadcomm import ThreadComm, run_ranks
from repro.core.serial import build_serial
from repro.errors import CommError, SimulationError


class TestThreadComm:
    def test_invalid_size(self):
        with pytest.raises(CommError):
            ThreadComm(0)

    def test_send_recv_across_threads(self):
        comm = ThreadComm(2, timeout=10.0)

        def program(rank, c):
            if rank == 0:
                c.send({"x": 1}, source=0, dest=1)
                return None
            return c.recv(source=0, dest=1)

        results = run_ranks(comm, program)
        assert results[1] == {"x": 1}

    def test_recv_timeout(self):
        comm = ThreadComm(2, timeout=0.2)
        with pytest.raises(CommError, match="timeout"):
            comm.recv(source=0, dest=1)

    def test_barrier_synchronises(self):
        comm = ThreadComm(4, timeout=10.0)
        log = []

        def program(rank, c):
            log.append(("before", rank))
            c.barrier(rank)
            log.append(("after", rank))

        run_ranks(comm, program)
        # All "before" entries precede all "after" entries.
        kinds = [k for k, _r in log]
        assert kinds.index("after") >= 4

    def test_allgather_orders_by_rank(self):
        comm = ThreadComm(3, timeout=10.0)
        results = run_ranks(
            comm, lambda rank, c: c.allgather(rank, rank * 10)
        )
        assert results == [[0, 10, 20]] * 3

    def test_allgather_repeated_rounds(self):
        comm = ThreadComm(3, timeout=10.0)

        def program(rank, c):
            out = []
            for round_no in range(5):
                out.append(c.allgather(rank, (rank, round_no)))
            return out

        results = run_ranks(comm, program)
        for rounds in results:
            for round_no, gathered in enumerate(rounds):
                assert gathered == [(r, round_no) for r in range(3)]

    def test_bcast(self):
        comm = ThreadComm(3, timeout=10.0)
        results = run_ranks(
            comm,
            lambda rank, c: c.bcast("hello" if rank == 1 else None, 1, rank),
        )
        assert results == ["hello"] * 3

    def test_rank_error_propagates(self):
        comm = ThreadComm(2, timeout=5.0)

        def program(rank, c):
            if rank == 1:
                raise ValueError("rank 1 exploded")
            c.barrier(rank)

        with pytest.raises((ValueError, CommError)):
            run_ranks(comm, program)


class TestClusterRunner:
    @pytest.mark.parametrize("q", [1, 2, 4])
    def test_exact_distances(self, random_graph, q):
        index = run_cluster_threads(random_graph, q, syncs=1)
        for s in (0, 7):
            truth = dijkstra_sssp(random_graph, s)
            for t in range(random_graph.num_vertices):
                assert index.distance(s, t) == truth[t]

    @pytest.mark.parametrize("c", [1, 3])
    @pytest.mark.parametrize("schedule", ["uniform", "early"])
    def test_exact_any_schedule(self, random_graph, c, schedule):
        index = run_cluster_threads(
            random_graph, 3, syncs=c, sync_schedule=schedule
        )
        truth = dijkstra_sssp(random_graph, 5)
        for t in range(random_graph.num_vertices):
            assert index.distance(5, t) == truth[t]

    def test_single_node_is_serial(self, random_graph):
        index = run_cluster_threads(random_graph, 1, syncs=1)
        serial_store, _ = build_serial(random_graph)
        assert index.store == serial_store

    def test_matches_simulated_cluster_label_set_semantics(
        self, random_graph
    ):
        """Functional and simulated cluster agree on query answers."""
        from repro.cluster.network import NetworkModel
        from repro.cluster.parapll import simulate_cluster

        functional = run_cluster_threads(random_graph, 3, syncs=2)
        simulated, _ = simulate_cluster(
            random_graph, 3, threads_per_node=1, syncs=2,
            network=NetworkModel(latency_units=0, per_entry_units=0),
        )
        for s in (0, 11):
            for t in range(random_graph.num_vertices):
                assert functional.distance(s, t) == simulated.distance(s, t)

    def test_more_syncs_shrink_labels(self, medium_graph):
        few = run_cluster_threads(medium_graph, 4, syncs=1)
        many = run_cluster_threads(medium_graph, 4, syncs=6)
        assert many.store.total_entries <= few.store.total_entries

    def test_invalid_params(self, random_graph):
        with pytest.raises(SimulationError):
            run_cluster_threads(random_graph, 0)
        with pytest.raises(SimulationError):
            run_cluster_threads(random_graph, 2, syncs=0)
