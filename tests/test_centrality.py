"""Tests for exact Brandes betweenness and ψ ordering."""

import numpy as np
import pytest

from repro.graph.centrality import (
    betweenness_centrality,
    by_exact_betweenness,
    psi_values,
)

from .conftest import build_graph


class TestBetweenness:
    def test_path_graph_centre(self):
        # Path 0-1-2-3-4: vertex 2 carries the most pairs.
        g = build_graph([(i, i + 1, 1.0) for i in range(4)])
        bc = betweenness_centrality(g)
        assert bc.argmax() == 2
        # Endpoints carry nothing.
        assert bc[0] == 0.0 and bc[4] == 0.0
        # Exact values (x2 convention): pairs through 1 = (0-2,0-3,0-4).
        assert bc[1] == pytest.approx(6.0)
        assert bc[2] == pytest.approx(8.0)

    def test_star_hub(self, star_graph):
        bc = betweenness_centrality(star_graph)
        assert bc[0] == pytest.approx(2 * (5 * 4 / 2))  # all leaf pairs
        assert np.all(bc[1:] == 0.0)

    def test_cycle_symmetric(self):
        g = build_graph([(i, (i + 1) % 6, 1.0) for i in range(6)])
        bc = betweenness_centrality(g)
        assert np.allclose(bc, bc[0])

    def test_weights_shift_paths(self):
        # Square 0-1-2-3-0; heavy edge 0-3 pushes pairs through 1, 2.
        g = build_graph(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 10.0)]
        )
        bc = betweenness_centrality(g)
        assert bc[1] > 0 and bc[2] > 0
        assert bc[0] == 0.0 or bc[0] < bc[1]

    def test_equal_path_splitting(self):
        # Diamond: 0-1-3 and 0-2-3 with equal lengths split the credit.
        g = build_graph(
            [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]
        )
        bc = betweenness_centrality(g)
        assert bc[1] == pytest.approx(bc[2])
        assert bc[1] == pytest.approx(1.0)  # half of pair (0,3), x2

    def test_matches_networkx(self, random_graph):
        nx = pytest.importorskip("networkx")
        g_nx = nx.Graph()
        for u, v, w in random_graph.edges():
            g_nx.add_edge(u, v, weight=w)
        ours = betweenness_centrality(random_graph)
        theirs = nx.betweenness_centrality(
            g_nx, weight="weight", normalized=False
        )
        for v in range(random_graph.num_vertices):
            # networkx counts each unordered pair once; we count twice.
            assert ours[v] == pytest.approx(2.0 * theirs.get(v, 0.0))


class TestPsi:
    def test_counts_endpoints(self, star_graph):
        psi = psi_values(star_graph)
        # Leaves: no through-paths, but 5 reachable vertices x2.
        assert psi[1] == pytest.approx(10.0)
        assert psi[0] > psi[1]

    def test_disconnected(self, two_components):
        psi = psi_values(two_components)
        assert psi[4] == 0.0  # isolated vertex
        assert psi[0] == pytest.approx(2.0)


class TestOrdering:
    def test_permutation(self, random_graph):
        order = by_exact_betweenness(random_graph)
        assert sorted(order.tolist()) == list(
            range(random_graph.num_vertices)
        )

    def test_star_hub_first(self, star_graph):
        assert by_exact_betweenness(star_graph)[0] == 0

    def test_psi_order_prunes_at_least_as_well_as_random(self, random_graph):
        from repro.core.serial import build_serial
        from repro.graph.order import by_random

        psi_store, _ = build_serial(
            random_graph, order=by_exact_betweenness(random_graph)
        )
        rnd_store, _ = build_serial(
            random_graph, order=by_random(random_graph, seed=0)
        )
        assert psi_store.total_entries <= rnd_store.total_entries
