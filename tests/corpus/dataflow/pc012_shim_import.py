"""Seeded defect: importing the deprecated ``repro.analysis`` shim
(PC012) — internal code must import ``repro.efficiency`` directly."""

from repro.analysis import audit_index

EXPECT_RULES = ["PC012"]


def check_everything(index):
    return audit_index(index)
