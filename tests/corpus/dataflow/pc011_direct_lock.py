"""Seeded defect: a lock the sanitizers cannot see (PC011) — a direct
``threading.Lock()`` instead of ``repro.check.hooks.make_lock``."""

import threading

EXPECT_RULES = ["PC011"]

_STATE_LOCK = threading.Lock()
