"""Seeded defect: a worker-role function commits into a shared store
with no hooks-managed lock held (PC007)."""

EXPECT_RULES = ["PC007"]


def worker_commit(store, triples):
    store.add_delta(triples)
