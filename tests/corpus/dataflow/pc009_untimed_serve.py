"""Seeded defect: serve-role code blocking without timeouts (PC009) —
an untimed queue get and a create_connection with no timeout."""

import socket

EXPECT_RULES = ["PC009"]


def handle_query(request, reply_queue):
    return reply_queue.get()


def handle_fetch(host, port):
    return socket.create_connection((host, port))
