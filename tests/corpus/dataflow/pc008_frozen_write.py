"""Seeded defect: writes into finalized (frozen / mmap-backed) CSR
label arrays (PC008) — a subscript store and an in-place sort."""

EXPECT_RULES = ["PC008"]


def patch_finalized(store):
    dists = store.finalized_dists()
    dists[0] = 0.0
    store.finalized_hubs().sort()
