"""Clean patterns that superficially resemble the seeded defects but
follow the rules — none of PC007–PC012 may fire here."""

from repro.check import hooks

EXPECT_RULES = []


def rank_setup(graph, triples):
    # Rank-private store: constructed locally, so PC007 exempts it.
    store = LabelStore(graph.n)  # noqa: F821 - shape only, never runs
    store.add_delta(triples)
    return store


def worker_commit_locked(store, commit_lock, triples):
    with commit_lock:
        store.add_delta(triples)


def handle_status(reply_queue):
    # Timed get: PC009 wants exactly this.
    return reply_queue.get(timeout=0.5)


def simulate_ordered(neighbors):
    frontier = set(neighbors)
    total = 0
    for v in sorted(frontier):
        total += v
    return total


def make_component_lock():
    return hooks.make_lock("corpus.component")
