"""Seeded defect: sim-role code iterating a set (PC010) — set order
varies per process, which breaks replay determinism."""

EXPECT_RULES = ["PC010"]


def simulate_frontier(neighbors):
    frontier = set(neighbors)
    total = 0
    for v in frontier:
        total += v
    return total
