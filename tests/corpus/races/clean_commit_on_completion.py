"""Clean pattern: ParaPLL's commit-on-completion (Proposition 1).

Workers commit to the shared store under a single commit lock; after
the joins the main thread reads lock-free.  The lockset engine flags
that unlocked read (the read's lockset is empty) — the vector-clock
engine must prove it race-free via the fork/join and lock
release/acquire edges."""

import threading

from repro.check import hooks

EXPECT = 0


def run() -> None:
    commit = hooks.make_lock("corpus.commit")

    def worker() -> None:
        # Private compute phase would go here; only the commit touches
        # the shared location, and only under the lock.
        with commit:
            hooks.access("corpus.labels", write=True)

    threads = [
        threading.Thread(target=worker, name=f"corpus-commit-{i}")
        for i in range(3)
    ]
    for t in threads:
        hooks.fork(t.name)
        t.start()
    for t in threads:
        t.join()
        hooks.join(t.name)
    # Lock-free read after all joins: ordered after every commit.
    hooks.access("corpus.labels", write=False)
