"""Seeded defect: main reads a worker's result synchronized only by a
raw Event the detector cannot see — the join edge is missing, so the
read races with the write even though this interleaving is ordered."""

import threading

from repro.check import hooks

EXPECT = 1


def run() -> None:
    done = threading.Event()

    def worker() -> None:
        hooks.access("corpus.result", write=True)
        done.set()

    t = threading.Thread(target=worker, name="corpus-nojoin")
    hooks.fork(t.name)
    t.start()
    done.wait()  # real ordering, but not a tracked sync edge
    hooks.access("corpus.result", write=False)
    t.join()
