"""Clean pattern: envelope handoff.  The producer's write is ordered
before the consumer's write solely by the send/recv edge (the token
carries the producer's clock), mirroring SimComm/ThreadComm."""

import queue
import threading

from repro.check import hooks

EXPECT = 0


def run() -> None:
    q: "queue.Queue" = queue.Queue()

    def producer() -> None:
        hooks.access("corpus.payload", write=True)
        token = hooks.send("corpus.chan")
        q.put(token)

    def consumer() -> None:
        token = q.get()
        hooks.recv("corpus.chan", token)
        hooks.access("corpus.payload", write=True)

    threads = [
        threading.Thread(target=producer, name="corpus-producer"),
        threading.Thread(target=consumer, name="corpus-consumer"),
    ]
    for t in threads:
        hooks.fork(t.name)
        t.start()
    for t in threads:
        t.join()
        hooks.join(t.name)
