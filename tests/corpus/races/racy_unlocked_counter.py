"""Seeded defect: two threads write one location with no lock and no
happens-before edge — the canonical data race.

The raw Barrier keeps both threads alive simultaneously (so they get
distinct idents; CPython reuses idents of finished threads) without
giving the detector a sync edge — it is not a tracked barrier."""

import threading

from repro.check import hooks

EXPECT = 1


def run() -> None:
    both_running = threading.Barrier(2)

    def bump() -> None:
        both_running.wait()
        for _ in range(3):
            hooks.access("corpus.counter", write=True)

    threads = [
        threading.Thread(target=bump, name=f"corpus-bump-{i}")
        for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
