"""Seeded defect: one thread acquires lock_a then lock_b, later
lock_b then lock_a.  No hang here (single thread), but the acquisition
graph has a cycle — two threads running the two halves can deadlock."""

from repro.check import hooks

EXPECT = 1


def run() -> None:
    lock_a = hooks.make_lock("corpus.lock_a")
    lock_b = hooks.make_lock("corpus.lock_b")
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with lock_a:
            pass
