"""Seeded defect, static-only: two code paths nest the same pair of
locks in opposite orders.  Nothing runs — the nested-``with`` pass
must flag the inversion from source alone."""

EXPECT = 1


def refresh_stats(index_lock, stats_lock, stats):
    with index_lock:
        with stats_lock:
            stats.refresh()


def rebuild_index(index_lock, stats_lock, index):
    with stats_lock:
        with index_lock:
            index.rebuild()
