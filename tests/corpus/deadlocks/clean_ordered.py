"""Clean pattern: the same lock pair is always taken in one global
order, both at runtime and in source — no cycle, no inversion."""

from repro.check import hooks

EXPECT = 0


def run() -> None:
    lock_a = hooks.make_lock("corpus.ordered_a")
    lock_b = hooks.make_lock("corpus.ordered_b")
    for _ in range(2):
        with lock_a:
            with lock_b:
                pass
