"""Coverage for small cross-cutting pieces: errors, engines, runner."""

import pytest

from repro.core.engines import ENGINES, make_engine
from repro.core.pruned_bfs import PrunedBFS
from repro.core.pruned_dijkstra import PrunedDijkstra
from repro.errors import (
    BenchmarkError,
    CommError,
    GraphError,
    GraphFormatError,
    IndexError_,
    NotIndexedError,
    OrderingError,
    ReproError,
    SimulationError,
    TaskError,
)
from repro.graph.order import by_degree


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            GraphFormatError,
            IndexError_,
            NotIndexedError,
            OrderingError,
            SimulationError,
            CommError,
            TaskError,
            BenchmarkError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_format_error_is_graph_error(self):
        assert issubclass(GraphFormatError, GraphError)

    def test_not_indexed_is_index_error(self):
        assert issubclass(NotIndexedError, IndexError_)

    def test_comm_error_is_simulation_error(self):
        assert issubclass(CommError, SimulationError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise TaskError("boom")


class TestEngineRegistry:
    def test_registry_contents(self):
        assert set(ENGINES) == {"dijkstra", "bfs"}

    def test_make_dijkstra(self, random_graph):
        engine = make_engine(
            "dijkstra", random_graph, by_degree(random_graph)
        )
        assert isinstance(engine, PrunedDijkstra)

    def test_make_bfs(self, random_graph):
        engine = make_engine("bfs", random_graph, by_degree(random_graph))
        assert isinstance(engine, PrunedBFS)

    def test_unknown_engine(self, random_graph):
        with pytest.raises(ReproError, match="unknown engine"):
            make_engine("astar", random_graph, by_degree(random_graph))

    def test_pq_factory_passed_to_dijkstra(self, random_graph):
        from repro.pq import PairingHeap

        engine = make_engine(
            "dijkstra",
            random_graph,
            by_degree(random_graph),
            pq_factory=PairingHeap,
        )
        assert engine._pq_factory is PairingHeap


class TestRunnerEdgeCases:
    def test_unknown_experiment_raises(self):
        from repro.bench.harness import BenchConfig
        from repro.bench.runner import run_experiment

        with pytest.raises(BenchmarkError):
            run_experiment("table99", BenchConfig(scale=0.1), None)


class TestOracleEagerKnn:
    def test_build_knn_eager(self, random_graph):
        from repro.core.index import PLLIndex
        from repro.service import DistanceOracle

        oracle = DistanceOracle(
            PLLIndex.build(random_graph), build_knn=True
        )
        assert oracle._knn is not None
        out = oracle.k_nearest(0, 3)
        assert len(out) == 3


class TestVersionExports:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name)
