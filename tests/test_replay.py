"""Tests for deterministic traffic replay (repro.service.replay)."""

import pytest

from repro.core.index import PLLIndex
from repro.errors import ReproError
from repro.obs.slo import SLOTarget
from repro.service import (
    REPLAY_SCHEMA,
    DistanceOracle,
    DistanceServer,
    ReplayConfig,
    generate_requests,
    render_replay,
    run_replay,
)
from repro.service.replay import _arrival_offsets


@pytest.fixture(scope="module")
def oracle():
    from repro.generators.random_graphs import gnm_random_graph

    graph = gnm_random_graph(40, 100, seed=7)
    return DistanceOracle(PLLIndex.build(graph))


class TestConfig:
    def test_defaults_valid(self):
        config = ReplayConfig()
        assert config.mode == "closed" and config.source == "zipf"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "sideways"},
            {"source": "tea-leaves"},
            {"requests": 0},
            {"clients": 0},
            {"mode": "open", "rate": 0.0},
            {"zipf_alpha": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReplayConfig(**kwargs)


class TestGenerateRequests:
    def test_pure_function_of_seed(self):
        config = ReplayConfig(requests=200, seed=5)
        a = generate_requests(config, 40)
        b = generate_requests(config, 40)
        assert a == b
        different = generate_requests(
            ReplayConfig(requests=200, seed=6), 40
        )
        assert a != different

    def test_no_self_pairs(self):
        for source in ("zipf", "uniform"):
            config = ReplayConfig(requests=300, source=source, seed=1)
            assert all(s != t for s, t in generate_requests(config, 5))

    def test_zipf_is_skewed_uniform_is_not(self):
        from collections import Counter

        n = 200
        zipf = generate_requests(
            ReplayConfig(requests=2000, source="zipf", seed=2), n
        )
        uniform = generate_requests(
            ReplayConfig(requests=2000, source="uniform", seed=2), n
        )

        def top_share(pairs):
            counts = Counter(v for pair in pairs for v in pair)
            top = sum(c for _, c in counts.most_common(5))
            return top / (2 * len(pairs))

        assert top_share(zipf) > 2 * top_share(uniform)

    def test_qlog_source_cycles_capture(self):
        records = [{"s": 1, "t": 2}, {"s": 3, "t": 4}]
        config = ReplayConfig(requests=5, source="qlog")
        pairs = generate_requests(config, 10, qlog_records=records)
        assert pairs == [(1, 2), (3, 4), (1, 2), (3, 4), (1, 2)]

    def test_qlog_source_needs_records(self):
        with pytest.raises(ReproError):
            generate_requests(ReplayConfig(source="qlog"), 10)

    def test_tiny_id_space_rejected(self):
        with pytest.raises(ReproError):
            generate_requests(ReplayConfig(), 1)

    def test_arrival_offsets_deterministic_and_increasing(self):
        config = ReplayConfig(mode="open", requests=50, rate=100.0, seed=3)
        a = _arrival_offsets(config)
        b = _arrival_offsets(config)
        assert a == b
        assert all(x < y for x, y in zip(a, a[1:]))
        # Mean inter-arrival ~ 1/rate.
        assert a[-1] == pytest.approx(50 / 100.0, rel=0.5)


class TestRunReplay:
    def test_exactly_one_target(self, oracle):
        with pytest.raises(ReproError):
            run_replay(ReplayConfig())
        with pytest.raises(ReproError):
            run_replay(
                ReplayConfig(), oracle=oracle, host="127.0.0.1", port=1
            )

    def test_closed_loop_inprocess(self, oracle):
        config = ReplayConfig(requests=200, clients=3, seed=9)
        report = run_replay(config, oracle=oracle)
        assert report["schema"] == REPLAY_SCHEMA
        assert report["target"] == "inprocess"
        assert report["requests"] == 200
        assert report["outcomes"]["ok"] == 200
        assert report["config"]["seed"] == 9
        assert report["throughput_rps"] > 0
        lat = report["latency_us"]
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert report["verdict"]["pass"] is True
        assert report["slo"]["requests_total"] == 200

    def test_open_loop_reports_rate_and_lag(self, oracle):
        config = ReplayConfig(
            mode="open", requests=60, clients=4, rate=3000.0, seed=1
        )
        report = run_replay(config, oracle=oracle)
        assert report["requests"] == 60
        ol = report["open_loop"]
        assert ol["target_rate"] == 3000.0
        assert ol["achieved_rate"] > 0
        assert ol["max_lag_seconds"] >= 0.0

    def test_breached_verdict(self, oracle):
        impossible = SLOTarget(
            name="latency_1ns",
            kind="latency",
            objective=0.5,
            threshold_seconds=1e-9,
            window_seconds=60,
        )
        config = ReplayConfig(requests=50, clients=1, seed=4)
        report = run_replay(
            config, oracle=oracle, targets=(impossible,)
        )
        assert report["verdict"]["pass"] is False
        assert report["verdict"]["breached"] == ["latency_1ns"]

    def test_against_live_server(self, oracle):
        with DistanceServer(oracle) as server:
            config = ReplayConfig(requests=80, clients=2, seed=12)
            report = run_replay(
                config, host="127.0.0.1", port=server.port
            )
        assert report["target"] == f"127.0.0.1:{server.port}"
        assert report["requests"] == 80
        assert report["outcomes"]["ok"] == 80

    def test_qlog_capture_replays(self, oracle):
        from repro.obs.qlog import QueryLogRecorder, recording

        with recording(QueryLogRecorder(sample=1.0)) as rec:
            oracle.distance(0, 5)
            oracle.distance(1, 7)
        captured = rec.snapshot()
        config = ReplayConfig(requests=6, clients=1, source="qlog")
        report = run_replay(
            config, oracle=oracle, qlog_records=captured
        )
        assert report["requests"] == 6
        assert report["outcomes"]["ok"] == 6

    def test_render(self, oracle):
        config = ReplayConfig(requests=30, clients=1, seed=2)
        text = render_replay(run_replay(config, oracle=oracle))
        assert "replay: 30 requests" in text
        assert "verdict: PASS" in text
        assert "slo latency_p99_50ms" in text
