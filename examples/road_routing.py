"""Route selection on a road network.

The introduction's third use case: "the result of a distance query can
also be used for optimal path selection between two nodes in a
network."  Road networks are the hardest PLL family (no hubs — Figure 5
shows their flat degree distribution), which is why the paper includes
three of them.

This example indexes a perturbed-grid road network, answers a batch of
origin–destination distance queries, and cross-checks both correctness
and throughput against the two online baselines (Dijkstra and
bidirectional Dijkstra).
"""

import random
import time

from repro import PLLIndex
from repro.baselines import bidirectional_dijkstra, dijkstra_pair
from repro.generators import grid_road_network


def main() -> None:
    graph = grid_road_network(
        rows=36, cols=36, removal_prob=0.05, diagonal_prob=0.1, seed=5
    )
    print(
        f"road network: n={graph.num_vertices} junctions, "
        f"m={graph.num_edges} road segments"
    )

    t0 = time.perf_counter()
    index = PLLIndex.build(graph)
    build = time.perf_counter() - t0
    print(f"indexed in {build:.2f}s, LN={index.avg_label_size():.1f}")

    rng = random.Random(1)
    trips = [
        (rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices))
        for _ in range(300)
    ]

    t0 = time.perf_counter()
    distances = [index.distance(s, t) for s, t in trips]
    t_index = time.perf_counter() - t0

    t0 = time.perf_counter()
    for s, t in trips[:30]:
        bidirectional_dijkstra(graph, s, t)
    t_bidir = (time.perf_counter() - t0) * len(trips) / 30

    t0 = time.perf_counter()
    for s, t in trips[:30]:
        dijkstra_pair(graph, s, t)
    t_dij = (time.perf_counter() - t0) * len(trips) / 30

    for (s, t), d in list(zip(trips, distances))[:5]:
        assert d == bidirectional_dijkstra(graph, s, t)
    print("distances agree with bidirectional Dijkstra on 5 trips")

    print(f"\n{len(trips)} origin-destination queries:")
    print(f"  PLL index:              {t_index * 1e3:8.1f} ms")
    print(f"  bidirectional Dijkstra: {t_bidir * 1e3:8.1f} ms")
    print(f"  plain Dijkstra:         {t_dij * 1e3:8.1f} ms")

    # A trip planner would call this per candidate destination.
    origin = 0
    dests = rng.sample(range(graph.num_vertices), 5)
    best = min(dests, key=lambda d: index.distance(origin, d))
    print(
        f"\nnearest of {len(dests)} candidate depots to junction {origin}: "
        f"{best} at distance {index.distance(origin, best):.0f}"
    )


if __name__ == "__main__":
    main()
