"""Exploring the cluster synchronisation tradeoff (the paper's §4.5).

"If we synchronize more frequently, we may get indexed labels with less
redundant results ... In contrast, if we synchronize less frequently,
we may get indexed labels with more redundant results" — and every
synchronisation stops all nodes and pays O(l·q·log q) communication.

This example sweeps the synchronisation count c on a simulated 6-node
cluster (uniform schedule, as in Figure 7) and prints the indexing
time / label size / communication share for each setting, then shows
the scale-bridged "early" schedule for comparison.
"""

from repro import load_dataset
from repro.bench.harness import serial_reference
from repro.cluster import NetworkModel, simulate_cluster


def main() -> None:
    graph = load_dataset("CondMat", scale=1.0, seed=7)
    print(f"graph: {graph.name}, n={graph.num_vertices}, m={graph.num_edges}")

    _store, stats, cost = serial_reference(graph)
    print(
        f"serial PLL: {stats.build_seconds:.2f}s, LN={stats.avg_label_size:.1f}\n"
    )
    network = NetworkModel(latency_units=50, per_entry_units=0.05)

    print("uniform schedule (paper-faithful), 6 nodes x 6 threads:")
    print(f"{'c':>4} {'IT(s)':>8} {'LN':>6} {'comm %':>7}")
    for c in (1, 2, 4, 8, 16, 32):
        index, run = simulate_cluster(
            graph,
            6,
            threads_per_node=6,
            syncs=c,
            sync_schedule="uniform",
            cost_model=cost,
            network=network,
            jitter=0.15,
            worker_jitter=0.25,
            seed=3,
        )
        pct = 100 * run.communication_time / run.makespan
        print(
            f"{c:>4} {run.makespan:>8.2f} {index.avg_label_size():>6.1f} "
            f"{pct:>6.1f}%"
        )

    print("\nearly (geometric) schedule — front-loads the exchanges:")
    print(f"{'c':>4} {'IT(s)':>8} {'LN':>6} {'comm %':>7}")
    for c in (2, 4, 6):
        index, run = simulate_cluster(
            graph,
            6,
            threads_per_node=6,
            syncs=c,
            sync_schedule="early",
            cost_model=cost,
            network=network,
            jitter=0.15,
            worker_jitter=0.25,
            seed=3,
        )
        pct = 100 * run.communication_time / run.makespan
        print(
            f"{c:>4} {run.makespan:>8.2f} {index.avg_label_size():>6.1f} "
            f"{pct:>6.1f}%"
        )

    print(
        "\nTakeaway: with uniform spacing, more syncs shrink the index but"
        "\ncost communication; front-loading the first sync captures most"
        "\nof the pruning value (Figure 6: early roots create ~90% of all"
        "\nlabels) at a fraction of the communication."
    )


if __name__ == "__main__":
    main()
