"""Quickstart: build a PLL distance index and query it.

Run with::

    python examples/quickstart.py

Builds the Gnutella stand-in graph, indexes it with serial weighted PLL
(Algorithm 1 over every root), verifies a few distances against plain
Dijkstra, then shows how much faster indexed queries are.
"""

import random
import time

from repro import PLLIndex, load_dataset
from repro.baselines import dijkstra_pair


def main() -> None:
    graph = load_dataset("Gnutella", scale=1.0, seed=7)
    print(f"graph: {graph.name}, n={graph.num_vertices}, m={graph.num_edges}")

    t0 = time.perf_counter()
    index = PLLIndex.build(graph)
    print(
        f"indexed in {time.perf_counter() - t0:.2f}s, "
        f"average label size LN={index.avg_label_size():.1f}"
    )

    rng = random.Random(0)
    pairs = [
        (rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices))
        for _ in range(200)
    ]

    # Correctness spot check against Dijkstra.
    for s, t in pairs[:10]:
        assert index.distance(s, t) == dijkstra_pair(graph, s, t)
    print("distances agree with Dijkstra on 10 random pairs")

    # Indexed queries vs. online Dijkstra.
    t0 = time.perf_counter()
    for s, t in pairs:
        index.distance(s, t)
    indexed = time.perf_counter() - t0
    t0 = time.perf_counter()
    for s, t in pairs[:20]:
        dijkstra_pair(graph, s, t)
    online = (time.perf_counter() - t0) * (len(pairs) / 20)
    print(
        f"{len(pairs)} queries: indexed {indexed * 1e3:.1f}ms, "
        f"Dijkstra ~{online * 1e3:.0f}ms "
        f"({online / max(indexed, 1e-9):.0f}x slower)"
    )

    s, t = pairs[0]
    result = index.query(s, t)
    print(
        f"example: d({s}, {t}) = {result.distance} "
        f"meeting at hub {result.hub} "
        f"({result.entries_scanned} label entries scanned)"
    )


if __name__ == "__main__":
    main()
