"""Quickstart: build a PLL distance index and query it.

Run with::

    python examples/quickstart.py

Builds the Gnutella stand-in graph, indexes it with serial weighted PLL
(Algorithm 1 over every root), verifies a few distances against plain
Dijkstra, shows how much faster indexed queries are, and finishes with
the build's observability summary (labels per root, prune rate, phase
timings) collected by the always-on ``repro.obs`` metrics layer.
"""

import random
import time

from repro import PLLIndex, load_dataset, obs
from repro.baselines import dijkstra_pair


def main() -> None:
    graph = load_dataset("Gnutella", scale=1.0, seed=7)
    print(f"graph: {graph.name}, n={graph.num_vertices}, m={graph.num_edges}")
    obs.reset()  # scope the metrics report below to this run

    t0 = time.perf_counter()
    index = PLLIndex.build(graph)
    print(
        f"indexed in {time.perf_counter() - t0:.2f}s, "
        f"average label size LN={index.avg_label_size():.1f}"
    )

    rng = random.Random(0)
    pairs = [
        (rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices))
        for _ in range(200)
    ]

    # Correctness spot check against Dijkstra.
    for s, t in pairs[:10]:
        assert index.distance(s, t) == dijkstra_pair(graph, s, t)
    print("distances agree with Dijkstra on 10 random pairs")

    # Indexed queries vs. online Dijkstra.
    t0 = time.perf_counter()
    for s, t in pairs:
        index.distance(s, t)
    indexed = time.perf_counter() - t0
    t0 = time.perf_counter()
    for s, t in pairs[:20]:
        dijkstra_pair(graph, s, t)
    online = (time.perf_counter() - t0) * (len(pairs) / 20)
    print(
        f"{len(pairs)} queries: indexed {indexed * 1e3:.1f}ms, "
        f"Dijkstra ~{online * 1e3:.0f}ms "
        f"({online / max(indexed, 1e-9):.0f}x slower)"
    )

    s, t = pairs[0]
    result = index.query(s, t)
    print(
        f"example: d({s}, {t}) = {result.distance} "
        f"meeting at hub {result.hub} "
        f"({result.entries_scanned} label entries scanned)"
    )

    # End-of-run metrics: the build above fed the global registry.
    reg = obs.get_registry()
    roots = reg.get("parapll_build_roots_total").value()
    labels = reg.get("parapll_build_labels_total").value()
    settled = reg.get("parapll_build_settled_total").value()
    pruned = reg.get("parapll_build_prune_hits_total").value()
    phases = reg.get("parapll_build_phase_seconds")
    print()
    print("build metrics (from repro.obs):")
    print(f"  labels/root: {labels / max(roots, 1):.1f} over {int(roots)} roots")
    print(f"  prune rate:  {pruned / max(settled, 1):.1%}")
    print(
        "  phases:      "
        + " | ".join(
            f"{p} {phases.labels(phase=p).value():.3f}s"
            for p in ("order", "search", "finalize")
        )
    )


if __name__ == "__main__":
    main()
