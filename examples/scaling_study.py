"""Intra-node scaling study: static vs. dynamic assignment.

A miniature of the paper's Tables 3 and 4 on one dataset: simulate
ParaPLL at 1-12 virtual threads under both task-assignment policies and
plot (ASCII) the speedup curves, the label growth, and the per-worker
load balance that explains why dynamic wins.
"""

from repro import load_dataset
from repro.bench.harness import serial_reference
from repro.sim import simulate_intra_node


def bar(value: float, scale: float = 4.0, width: int = 48) -> str:
    return "#" * min(width, int(round(value * scale)))


def main() -> None:
    graph = load_dataset("Epinions", scale=0.7, seed=7)
    print(f"graph: {graph.name}, n={graph.num_vertices}, m={graph.num_edges}")
    _store, stats, cost = serial_reference(graph)
    print(f"serial PLL: {stats.build_seconds:.2f}s, LN={stats.avg_label_size:.1f}\n")

    workers = [1, 2, 4, 6, 8, 10, 12]
    results = {}
    for policy in ("static", "dynamic"):
        base = None
        rows = []
        for p in workers:
            index, run = simulate_intra_node(
                graph,
                p,
                policy=policy,
                cost_model=cost,
                jitter=0.15,
                worker_jitter=0.25,
                seed=9 + p,
            )
            if base is None:
                base = run.makespan
            rows.append(
                (p, base / run.makespan, index.avg_label_size(), run)
            )
        results[policy] = rows

    print("speedup over 1 thread:")
    for policy, rows in results.items():
        print(f"  {policy}:")
        for p, sp, _ln, _run in rows:
            print(f"    p={p:<2} {sp:5.2f}x {bar(sp)}")

    print("\nlabel size (LN) growth with threads:")
    for policy, rows in results.items():
        lns = " ".join(f"{ln:5.1f}" for _p, _sp, ln, _r in rows)
        print(f"  {policy:8s} {lns}")

    print("\nload balance at p=12 (busy seconds per worker):")
    for policy, rows in results.items():
        run = rows[-1][3]
        busy = run.per_worker_busy
        print(
            f"  {policy:8s} imbalance={run.load_imbalance:.2f} "
            f"(max {max(busy):.2f}s / mean {sum(busy) / len(busy):.2f}s)"
        )
    print(
        "\nThe dynamic policy keeps every worker busy until the queue"
        "\ndrains, so its makespan tracks the mean load; static pre-"
        "\nassignment is hostage to the slowest worker (paper §5.4.2)."
    )


if __name__ == "__main__":
    main()
