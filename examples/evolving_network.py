"""Keeping the index fresh on an evolving network.

Social networks gain edges continuously; rebuilding a PLL index from
scratch on every friendship is wasteful.  This example uses
:class:`~repro.core.dynamic.DynamicPLL` to absorb edge insertions
incrementally (resumed pruned searches from the endpoints' hubs) and
compares the repair cost against full rebuilds, verifying exactness
after every change.
"""

import random
import time

from repro import PLLIndex
from repro.baselines import dijkstra_pair
from repro.core.dynamic import DynamicPLL
from repro.errors import GraphError
from repro.generators import barabasi_albert


def main() -> None:
    graph = barabasi_albert(500, 3, seed=21)
    print(f"network: n={graph.num_vertices}, m={graph.num_edges}")

    t0 = time.perf_counter()
    index = PLLIndex.build(graph)
    build_time = time.perf_counter() - t0
    print(
        f"initial build: {build_time:.2f}s, "
        f"{index.store.total_entries} label entries"
    )

    dyn = DynamicPLL(index)
    rng = random.Random(5)
    repair_total = 0.0
    inserted = 0
    while inserted < 20:
        a = rng.randrange(graph.num_vertices)
        b = rng.randrange(graph.num_vertices)
        w = float(rng.randint(1, 10))
        try:
            t0 = time.perf_counter()
            added = dyn.insert_edge(a, b, w)
            repair_total += time.perf_counter() - t0
        except GraphError:
            continue  # duplicate edge or self loop
        inserted += 1
        if inserted % 5 == 0:
            # Spot-check exactness on the updated graph.
            current = dyn.current_graph()
            s, t = rng.randrange(500), rng.randrange(500)
            assert dyn.distance(s, t) == dijkstra_pair(current, s, t)
            print(
                f"  after {inserted:2d} insertions: +{added} labels for the "
                f"last edge, index exact (checked d({s},{t}))"
            )

    print(
        f"\n20 incremental repairs: {repair_total:.3f}s total "
        f"vs ~{20 * build_time:.1f}s for 20 full rebuilds "
        f"({20 * build_time / max(repair_total, 1e-9):.0f}x saved)"
    )
    print(
        f"label entries now {dyn.store.total_entries} "
        f"(loose entries accumulate; dyn.rebuild() re-canonicalises)"
    )


if __name__ == "__main__":
    main()
