"""Social-aware search: rank users by network closeness.

The paper's introduction motivates distance queries with social-aware
search: "the distance between two users can represent closeness in a
social network, which can then be used in a social-aware search to help
find related content or users."

This example builds a community-structured social graph, indexes it
with thread-parallel ParaPLL (dynamic assignment, Algorithm 2), and
then serves two search-backend primitives:

* ``closest_users(u, k)`` — the k most closely connected users to u,
* ``rerank(u, candidates)`` — re-order content authored by candidate
  users so closer authors come first (the context-aware ranking signal).
"""

import random
import time
from typing import List, Sequence, Tuple

from repro.core.knn import KNNIndex
from repro.generators import community_graph
from repro.parallel import build_parallel_threads


def closest_users(knn: KNNIndex, u: int, k: int) -> List[Tuple[int, float]]:
    """The *k* users with the smallest shortest-path distance to *u*.

    Served by the inverted-label kNN structure: touches only the label
    entries near the frontier instead of scanning all n users.
    """
    return knn.k_nearest(u, k)


def rerank(
    index, u: int, candidates: Sequence[int]
) -> List[Tuple[int, float]]:
    """Order candidate authors by closeness to the searching user."""
    scored = [(c, index.distance(u, c)) for c in candidates]
    scored.sort(key=lambda pair: pair[1])
    return scored


def main() -> None:
    # 12 communities of 60 users: dense friend groups, sparse bridges.
    graph = community_graph(
        communities=12, size=60, p_in=0.3, p_out=0.002, seed=11
    )
    print(
        f"social graph: n={graph.num_vertices} users, "
        f"m={graph.num_edges} friendships"
    )

    t0 = time.perf_counter()
    index = build_parallel_threads(graph, num_threads=4, policy="dynamic")
    print(
        f"ParaPLL (4 threads, dynamic) indexed in "
        f"{time.perf_counter() - t0:.2f}s, LN={index.avg_label_size():.1f}"
    )

    knn = KNNIndex(index.store)
    user = 17
    print(f"\n5 closest users to user {user}:")
    for v, d in closest_users(knn, user, 5):
        print(f"  user {v:4d}  closeness distance {d:.0f}")

    rng = random.Random(3)
    candidates = rng.sample(range(graph.num_vertices), 8)
    print(f"\nsearch results by users {candidates}, reranked for user {user}:")
    for c, d in rerank(index, user, candidates):
        same = "same community" if c // 60 == user // 60 else ""
        print(f"  author {c:4d}  distance {d:5.0f}  {same}")


if __name__ == "__main__":
    main()
