"""Fleet observability: two worker processes, one merged dashboard.

ParaPLL's deployment story is ranks × threads — separate *processes*
whose metrics, traces and progress reports all live in module-level
state that goes dark across the fork boundary.  This example runs the
full telemetry plane end to end, in one script:

* a parent-side :class:`~repro.obs.relay.Collector` listening on an
  ephemeral loopback port, merging into a private registry;
* two forked worker processes, each running a monitored threaded build
  with a :class:`~repro.obs.relay.RelayClient` shipping
  ``parapll-telemetry/1`` frames (metric deltas, spans, flightrec
  events, buildmon snapshots) back to the parent;
* the merged result: fleet-wide counters (sums are exact), one
  stitched Chrome trace with every span attributed by pid/rank, and
  the ``parapll dash`` text frame.

Run it, then open ``fleet.trace.json`` in Perfetto to see both
workers' build lanes on one timeline.  For the live version of the
same view, run ``parapll dash --demo 2``.
"""

from repro import obs
from repro.generators.paper import load_dataset
from repro.obs.metrics import MetricsRegistry
from repro.obs.relay import Collector, RelayClient, render_fleet


def worker(host: str, port: int, rank: int) -> None:
    """One fleet worker: a relayed, monitored threaded build."""
    from repro.obs import buildmon
    from repro.parallel.threads import build_parallel_threads

    obs.reset()
    obs.configure(tracing=True)
    graph = load_dataset("Gnutella", scale=0.3, seed=7 + rank)
    client = RelayClient(host, port, rank=rank, flush_interval=0.1)
    try:
        monitor = buildmon.BuildMonitor(
            total_roots=graph.num_vertices, interval_seconds=0.1
        )
        with buildmon.monitored(monitor):
            build_parallel_threads(graph, 2, policy="dynamic")
    finally:
        client.close()


def main() -> None:
    import multiprocessing

    # A private registry: the collector shows the *fleet's* merged
    # metrics, not whatever this parent process recorded on its own
    # (and a client in the same process must never diff the registry
    # the collector merges into — that would re-ship merged increments
    # forever).
    with Collector(registry=MetricsRegistry()) as collector:
        print(f"collector listening on {collector.host}:{collector.port}\n")
        children = [
            multiprocessing.Process(
                target=worker, args=(collector.host, collector.port, rank)
            )
            for rank in range(2)
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=120.0)

        # Let the collector drain the final at-exit flushes.
        import time

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            stats = collector.stats()
            if stats["sources"] and not any(
                s["connected"] for s in stats["sources"].values()
            ):
                break
            time.sleep(0.05)

        print(render_fleet(collector))

        # Counters merged by summing: the fleet-wide root total is the
        # exact sum of what each worker committed.
        stats = collector.stats()
        for metric in collector.registry.snapshot():
            if metric["name"] == "parapll_build_roots_total":
                total = sum(s["value"] for s in metric["series"])
                print(f"\nfleet-wide roots indexed: {total:.0f}")
        print(
            f"frames {stats['frames']}, dropped {stats['dropped']}, "
            f"malformed {stats['malformed']}, "
            f"merge errors {stats['merge_errors']}"
        )

        # Every span and event from both workers, pid/rank-attributed,
        # in one Chrome trace.
        count = collector.write_chrome_trace("fleet.trace.json")
        print(f"wrote {count} stitched trace events to fleet.trace.json")


if __name__ == "__main__":
    main()
