"""A distance microservice: the paper's search-backend deployment.

Runs the full serving stack end to end: build an index over a social
graph, wrap it in a cached :class:`~repro.service.oracle.DistanceOracle`,
expose it over TCP with :class:`~repro.service.server.DistanceServer`,
and hit it with a client the way a context-aware search frontend would
(distance filters, kNN suggestions, path explanations).
"""

import random
import time

from repro import PLLIndex
from repro.generators import barabasi_albert
from repro.service import DistanceClient, DistanceOracle, DistanceServer


def main() -> None:
    graph = barabasi_albert(600, 4, seed=13)
    print(f"user graph: n={graph.num_vertices}, m={graph.num_edges}")
    index = PLLIndex.build(graph)
    oracle = DistanceOracle(index, cache_size=1024, build_knn=True)

    with DistanceServer(oracle) as server:
        print(f"serving on 127.0.0.1:{server.port}")
        with DistanceClient("127.0.0.1", server.port) as client:
            assert client.ping()

            user = 37
            # "People you may know": nearest non-neighbours.
            friends = set(graph.neighbors(user).tolist())
            suggestions = [
                (v, d)
                for v, d in client.k_nearest(user, 15)
                if v not in friends
            ][:5]
            print(f"\nsuggestions for user {user}:")
            for v, d in suggestions:
                print(f"  user {v:4d} at distance {d:.0f}")

            # Batch relevance scoring for a page of search results.
            rng = random.Random(2)
            authors = [rng.randrange(graph.num_vertices) for _ in range(10)]
            t0 = time.perf_counter()
            scores = client.batch([(user, a) for a in authors])
            dt = (time.perf_counter() - t0) * 1e3
            ranked = sorted(zip(scores, authors))
            print(f"\nsearch page reranked in {dt:.1f}ms:")
            for d, a in ranked[:5]:
                print(f"  author {a:4d} closeness {d:.0f}")

            # Explain one connection with an actual path.
            target = ranked[0][1]
            path = client.shortest_path(user, target)
            print(f"\nconnection {user} -> {target}: {' -> '.join(map(str, path))}")

            stats = client.stats()
            print(
                f"\nserver stats: {stats['queries']} point queries, "
                f"hit rate {stats['hit_rate']:.0%}"
            )


if __name__ == "__main__":
    main()
